package cregex

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// randPattern generates a random valid pattern from the dialect grammar.
func randPattern(rng *rand.Rand, depth int) string {
	var b strings.Builder
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		writeAtom(rng, &b, depth)
	}
	return b.String()
}

func writeAtom(rng *rand.Rand, b *strings.Builder, depth int) {
	choice := rng.Intn(10)
	if depth <= 0 && choice >= 7 {
		choice = rng.Intn(7)
	}
	switch choice {
	case 0, 1, 2:
		// Literal digit run.
		for k := 0; k <= rng.Intn(3); k++ {
			b.WriteByte(byte('0' + rng.Intn(10)))
		}
	case 3:
		b.WriteByte('.')
	case 4:
		b.WriteByte('_')
	case 5:
		// Class with a range.
		lo := rng.Intn(8)
		hi := lo + 1 + rng.Intn(9-lo-1)
		b.WriteByte('[')
		if rng.Intn(4) == 0 {
			b.WriteByte('^')
		}
		b.WriteByte(byte('0' + lo))
		b.WriteByte('-')
		b.WriteByte(byte('0' + hi))
		b.WriteByte(']')
	case 6:
		// Repeat of a simple atom.
		b.WriteByte(byte('0' + rng.Intn(10)))
		b.WriteString([]string{"*", "+", "?"}[rng.Intn(3)])
	case 7, 8:
		// Group, possibly alternation.
		b.WriteByte('(')
		b.WriteString(randPattern(rng, depth-1))
		if rng.Intn(2) == 0 {
			b.WriteByte('|')
			b.WriteString(randPattern(rng, depth-1))
		}
		b.WriteByte(')')
	case 9:
		// Starred group.
		b.WriteByte('(')
		b.WriteString(randPattern(rng, depth-1))
		b.WriteString(")*")
	}
}

// TestFuzzDFAAgainstNFA cross-checks the lazy-DFA enumeration against the
// direct NFA simulation over randomly generated grammar-valid patterns.
func TestFuzzDFAAgainstNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 200; i++ {
		p := randPattern(rng, 2)
		re, err := Parse(p)
		if err != nil {
			t.Fatalf("generator produced invalid pattern %q: %v", p, err)
		}
		fast := re.Language()
		slow := re.languageNFA()
		if !languagesEqual(fast, slow) {
			t.Fatalf("DFA/NFA disagree on %q: %d vs %d values", p, len(fast), len(slow))
		}
	}
}

// TestFuzzStringRoundTrip: reprinting a random pattern yields the same
// language.
func TestFuzzStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 200; i++ {
		p := randPattern(rng, 2)
		re, err := Parse(p)
		if err != nil {
			t.Fatalf("invalid pattern %q: %v", p, err)
		}
		re2, err := Parse(re.String())
		if err != nil {
			t.Fatalf("reprint of %q unparseable: %q: %v", p, re.String(), err)
		}
		if !languagesEqual(re.Language(), re2.Language()) {
			t.Fatalf("reprint of %q changed language (reprint %q)", p, re.String())
		}
	}
}

// TestFuzzRewriteBijection: for random patterns, the rewrite accepts
// exactly the permuted language.
func TestFuzzRewriteBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	checked := 0
	for i := 0; i < 150; i++ {
		p := randPattern(rng, 2)
		orig, err := Parse(p)
		if err != nil {
			t.Fatalf("invalid pattern %q: %v", p, err)
		}
		lang := orig.Language()
		if len(lang) > 20000 {
			continue // alternation of 20k+ values: slow, covered elsewhere
		}
		res, err := RewriteASN(p, testPerm, Alternation)
		if errors.Is(err, ErrUndecomposable) {
			// Conservative fallback: the caller hashes the whole pattern,
			// which can never leak. Only acceptable when the original
			// language really is empty (nothing verifiable to preserve).
			if len(lang) != 0 {
				t.Fatalf("%q declared undecomposable but accepts %d values", p, len(lang))
			}
			continue
		}
		if err != nil {
			t.Fatalf("rewrite of %q failed: %v", p, err)
		}
		rew, err := Parse(res.Pattern)
		if err != nil {
			t.Fatalf("rewrite of %q unparseable: %q: %v", p, res.Pattern, err)
		}
		want := make(map[uint32]bool, len(lang))
		for _, v := range lang {
			want[testPerm(v)] = true
		}
		got := rew.Language()
		if len(got) != len(want) {
			t.Fatalf("rewrite of %q: language size %d, want %d (pattern %q)",
				p, len(got), len(want), truncatePat(res.Pattern))
		}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("rewrite of %q accepts %d not in permuted language", p, v)
			}
		}
		checked++
	}
	if checked < 30 {
		t.Errorf("only %d patterns exercised the bijection check", checked)
	}
}

func truncatePat(p string) string {
	if len(p) > 120 {
		return p[:120] + "...(" + strconv.Itoa(len(p)) + " chars)"
	}
	return p
}
