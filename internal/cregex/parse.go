// Package cregex implements the regular-expression machinery the paper
// needs to anonymize AS numbers and BGP community attributes that appear
// inside routing-policy regexps (§4.4, §4.5).
//
// The dialect is the Cisco IOS AS-path/community regexp language: decimal
// literals, '.', character classes with ranges and negation, grouping,
// alternation, the postfix operators '*', '+', '?', and the boundary
// tokens '_', '^', '$'. In IOS, '_' matches a delimiter or the start or
// end of the input; when a regexp is applied to a single AS number or
// community value (the paper's language-enumeration trick applies the
// regexp "to a list of all 2^16 ASNs"), the boundary tokens become
// zero-width assertions satisfiable only at the ends of the token. That is
// the matching semantics implemented here.
//
// The package provides:
//
//   - parsing to an AST (Parse),
//   - full-token matching via Thompson NFA simulation (Regexp.MatchToken),
//   - enumeration of the accepted language over the 16-bit ASN/value
//     universe (Regexp.Language),
//   - rewriting of a regexp under an ASN permutation so that the new
//     regexp accepts exactly the permuted language (Rewrite*, in
//     rewrite.go), in both the paper's alternation form and the
//     minimal-DFA form the paper mentions as an available refinement
//     (dfa.go).
package cregex

import (
	"fmt"
	"strings"
)

// Node is an AST node. The concrete types are Lit, Class, Any, Bound,
// Concat, Alt, Repeat, and Group.
type Node interface {
	writeTo(b *strings.Builder)
}

// Lit matches one literal byte.
type Lit struct{ C byte }

// Any matches any single byte of the alphabet ('.').
type Any struct{}

// Bound is a zero-width boundary assertion: '_', '^', or '$'. Sym records
// which token was written so the regexp can be reprinted faithfully.
type Bound struct{ Sym byte }

// Class matches one byte from a set (or its complement when Neg is set).
type Class struct {
	Neg bool
	Set ByteSet
}

// Concat matches its subexpressions in sequence.
type Concat struct{ Subs []Node }

// Alt matches any one of its alternatives.
type Alt struct{ Subs []Node }

// Group is an explicit parenthesized subexpression.
type Group struct{ Sub Node }

// Repeat matches Sub repeated: Op is '*', '+', or '?'.
type Repeat struct {
	Sub Node
	Op  byte
}

// ByteSet is a set of byte values.
type ByteSet [4]uint64

// Add inserts b into the set.
func (s *ByteSet) Add(b byte) { s[b>>6] |= 1 << (b & 63) }

// Has reports membership.
func (s *ByteSet) Has(b byte) bool { return s[b>>6]&(1<<(b&63)) != 0 }

// AddRange inserts the inclusive range [lo, hi].
func (s *ByteSet) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.Add(byte(c))
	}
}

// Union merges o into s.
func (s *ByteSet) Union(o ByteSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

// Count returns the number of members.
func (s ByteSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Regexp is a parsed pattern together with its compiled NFA and a lazily
// constructed DFA used for language enumeration.
type Regexp struct {
	Src  string
	Root Node
	prog *program
	lazy *lazyDFA
}

// SyntaxError describes a parse failure.
type SyntaxError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cregex: %s at position %d in %q", e.Msg, e.Pos, e.Pattern)
}

type parser struct {
	src string
	pos int
}

// Parse parses a Cisco-dialect regexp and compiles it for matching.
func Parse(pattern string) (*Regexp, error) {
	p := &parser{src: pattern}
	root, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, &SyntaxError{pattern, p.pos, "unexpected character"}
	}
	re := &Regexp{Src: pattern, Root: root}
	re.prog = compile(root)
	return re, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{p.src, p.pos, fmt.Sprintf(format, args...)}
}

func (p *parser) parseAlt() (Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '|' {
		return first, nil
	}
	alt := &Alt{Subs: []Node{first}}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		sub, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alt.Subs = append(alt.Subs, sub)
	}
	return alt, nil
}

func (p *parser) parseConcat() (Node, error) {
	var subs []Node
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '|' || c == ')' {
			break
		}
		atom, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, atom)
	}
	switch len(subs) {
	case 0:
		return &Concat{}, nil // empty expression matches the empty string
	case 1:
		return subs[0], nil
	default:
		return &Concat{Subs: subs}, nil
	}
}

func (p *parser) parseRepeat() (Node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) {
		op := p.src[p.pos]
		if op != '*' && op != '+' && op != '?' {
			break
		}
		if _, isBound := atom.(*Bound); isBound {
			return nil, p.errf("repetition of boundary assertion")
		}
		p.pos++
		atom = &Repeat{Sub: atom, Op: op}
	}
	return atom, nil
}

func (p *parser) parseAtom() (Node, error) {
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of pattern")
	}
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		sub, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("missing closing parenthesis")
		}
		p.pos++
		return &Group{Sub: sub}, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return &Any{}, nil
	case '_', '^', '$':
		p.pos++
		return &Bound{Sym: c}, nil
	case '*', '+', '?':
		return nil, p.errf("repetition operator with nothing to repeat")
	case ')':
		return nil, p.errf("unmatched closing parenthesis")
	case '\\':
		if p.pos+1 >= len(p.src) {
			return nil, p.errf("trailing backslash")
		}
		p.pos += 2
		return &Lit{C: p.src[p.pos-1]}, nil
	default:
		p.pos++
		return &Lit{C: c}, nil
	}
}

func (p *parser) parseClass() (Node, error) {
	p.pos++ // consume '['
	cl := &Class{}
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		cl.Neg = true
		p.pos++
	}
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		// A literal ']' first is permitted, as in POSIX.
		cl.Set.Add(']')
		p.pos++
	}
	for {
		if p.pos >= len(p.src) {
			return nil, p.errf("missing closing bracket")
		}
		c := p.src[p.pos]
		if c == ']' {
			p.pos++
			return cl, nil
		}
		p.pos++
		// Backslash escapes a class metacharacter (']', '-', '^', '\'),
		// mirroring writeClassChar so every reprint reparses to the same
		// set (the fuzz target's round-trip invariant).
		if c == '\\' {
			if p.pos >= len(p.src) {
				return nil, p.errf("trailing backslash in class")
			}
			c = p.src[p.pos]
			p.pos++
		}
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			hi := p.src[p.pos+1]
			consumed := 2
			if hi == '\\' {
				if p.pos+2 >= len(p.src) {
					return nil, p.errf("trailing backslash in class")
				}
				hi = p.src[p.pos+2]
				consumed = 3
			}
			if hi < c {
				return nil, p.errf("invalid class range %c-%c", c, hi)
			}
			cl.Set.AddRange(c, hi)
			p.pos += consumed
		} else {
			cl.Set.Add(c)
		}
	}
}

// String reprints the AST as a pattern string. Parse(re.String()) accepts
// the same language as re.
func (re *Regexp) String() string {
	var b strings.Builder
	re.Root.writeTo(&b)
	return b.String()
}

func (n *Lit) writeTo(b *strings.Builder) {
	switch n.C {
	case '(', ')', '[', ']', '*', '+', '?', '.', '|', '^', '$', '_', '\\':
		b.WriteByte('\\')
	}
	b.WriteByte(n.C)
}

func (n *Any) writeTo(b *strings.Builder)   { b.WriteByte('.') }
func (n *Bound) writeTo(b *strings.Builder) { b.WriteByte(n.Sym) }

func (n *Class) writeTo(b *strings.Builder) {
	b.WriteByte('[')
	if n.Neg {
		b.WriteByte('^')
	}
	// Emit members as compact ranges.
	c := 0
	for c < 256 {
		if !n.Set.Has(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && n.Set.Has(byte(c)) {
			c++
		}
		hi := c - 1
		writeClassChar(b, byte(lo))
		if hi > lo {
			if hi > lo+1 {
				b.WriteByte('-')
			}
			writeClassChar(b, byte(hi))
		}
	}
	b.WriteByte(']')
}

func writeClassChar(b *strings.Builder, c byte) {
	if c == ']' || c == '\\' || c == '-' || c == '^' {
		b.WriteByte('\\')
	}
	b.WriteByte(c)
}

func (n *Concat) writeTo(b *strings.Builder) {
	for _, s := range n.Subs {
		if alt, ok := s.(*Alt); ok {
			b.WriteByte('(')
			alt.writeTo(b)
			b.WriteByte(')')
			continue
		}
		s.writeTo(b)
	}
}

func (n *Alt) writeTo(b *strings.Builder) {
	for i, s := range n.Subs {
		if i > 0 {
			b.WriteByte('|')
		}
		s.writeTo(b)
	}
}

func (n *Group) writeTo(b *strings.Builder) {
	b.WriteByte('(')
	n.Sub.writeTo(b)
	b.WriteByte(')')
}

func (n *Repeat) writeTo(b *strings.Builder) {
	needsParens := false
	switch n.Sub.(type) {
	case *Concat, *Alt, *Repeat:
		needsParens = true
	}
	if needsParens {
		b.WriteByte('(')
	}
	n.Sub.writeTo(b)
	if needsParens {
		b.WriteByte(')')
	}
	b.WriteByte(n.Op)
}
