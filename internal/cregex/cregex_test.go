package cregex

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, pattern string) *Regexp {
	t.Helper()
	re, err := Parse(pattern)
	if err != nil {
		t.Fatalf("Parse(%q): %v", pattern, err)
	}
	return re
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "(701", "70[1-", "[", "*", "70**(", "a\\", "_*", "[5-1]"}
	for _, p := range bad {
		if _, err := Parse(p); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", p)
		}
	}
}

func TestMatchToken(t *testing.T) {
	cases := []struct {
		pattern string
		token   string
		want    bool
	}{
		{"701", "701", true},
		{"701", "7012", false},
		{"701", "1701", false},
		{"70[1-3]", "701", true},
		{"70[1-3]", "702", true},
		{"70[1-3]", "703", true},
		{"70[1-3]", "704", false},
		{"70[1-3]", "70", false},
		{"_1239_", "1239", true},
		{"_1239_", "12390", false},
		{"(_1239_|_70[2-5]_)", "1239", true},
		{"(_1239_|_70[2-5]_)", "702", true},
		{"(_1239_|_70[2-5]_)", "705", true},
		{"(_1239_|_70[2-5]_)", "701", false},
		{"^701$", "701", true},
		{"^701$", "7010", false},
		{".*", "65535", true},
		{".*", "", true},
		{"70.", "701", true},
		{"70.", "70", false},
		{"7[0-9]+", "70", true},
		{"7[0-9]+", "7999", true},
		{"7[0-9]+", "7", false},
		{"70?1", "71", true},
		{"70?1", "701", true},
		{"70?1", "7001", false},
		{"[^0]01", "101", true},
		{"[^0]01", "001", false},
		{"701:7[1-5]..", "701:7100", true},
		{"701:7[1-5]..", "701:7599", true},
		{"701:7[1-5]..", "701:7600", false},
		{"701:7[1-5]..", "701:710", false},
		{"_1239_.*_701_", "1239", false}, // two bounded numbers cannot share one token
		{"", "", true},
		{"", "1", false},
	}
	for _, c := range cases {
		re := mustParse(t, c.pattern)
		if got := re.MatchToken(c.token); got != c.want {
			t.Errorf("MatchToken(%q, %q) = %v, want %v", c.pattern, c.token, got, c.want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	patterns := []string{
		"701", "70[1-3]", "_1239_", "(_1239_|_70[2-5]_)", "^701$",
		".*", "7[0-9]+", "70?1", "[^0]01", "701:7[1-5]..", "(1|2|3)",
		"a\\*b", "((70)1)*",
	}
	for _, p := range patterns {
		re := mustParse(t, p)
		re2 := mustParse(t, re.String())
		// The reprint must accept the same language.
		l1, l2 := re.Language(), re2.Language()
		if len(l1) != len(l2) {
			t.Fatalf("round-trip of %q changed language size: %d -> %d (reprint %q)",
				p, len(l1), len(l2), re.String())
		}
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("round-trip of %q changed language at %d", p, i)
			}
		}
	}
}

func TestLanguage(t *testing.T) {
	cases := []struct {
		pattern string
		want    []uint32
	}{
		{"70[1-3]", []uint32{701, 702, 703}},
		{"_1239_", []uint32{1239}},
		{"(_1239_|_70[2-5]_)", []uint32{702, 703, 704, 705, 1239}},
		{"6451[12]", []uint32{64511, 64512}},
		{"9999[5-9]", nil}, // above the 16-bit universe
	}
	for _, c := range cases {
		got := mustParse(t, c.pattern).Language()
		if len(got) != len(c.want) {
			t.Fatalf("Language(%q) = %v, want %v", c.pattern, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Language(%q)[%d] = %d, want %d", c.pattern, i, got[i], c.want[i])
			}
		}
	}
	if !AcceptsAll(mustParse(t, ".*").Language()) {
		t.Error(".* does not accept the whole universe")
	}
	if !AcceptsAll(mustParse(t, "[0-9]+").Language()) {
		t.Error("[0-9]+ does not accept the whole universe")
	}
}

func TestMatchASN(t *testing.T) {
	re := mustParse(t, "70[1-5]")
	for a := uint32(700); a <= 706; a++ {
		want := a >= 701 && a <= 705
		if got := re.MatchASN(a); got != want {
			t.Errorf("MatchASN(%d) = %v, want %v", a, got, want)
		}
	}
}

func languagesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMinimalRegexp(t *testing.T) {
	cases := [][]uint32{
		{701, 702, 703},
		{1239},
		{702, 703, 704, 705, 1239},
		{0},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{100, 200, 300, 1000, 2000, 65535},
		{},
	}
	for _, lang := range cases {
		pat := MinimalRegexp(lang)
		re, err := Parse(pat)
		if err != nil {
			t.Fatalf("MinimalRegexp(%v) emitted unparseable %q: %v", lang, pat, err)
		}
		if got := re.Language(); !languagesEqual(got, lang) {
			t.Errorf("MinimalRegexp(%v) = %q accepts %v", lang, pat, got)
		}
	}
}

func TestMinimalRegexpCompression(t *testing.T) {
	// A contiguous digit range must compress to a class, far shorter
	// than the alternation.
	lang := []uint32{701, 702, 703, 704, 705}
	min := MinimalRegexp(lang)
	alt := AlternationRegexp(lang)
	if len(min) >= len(alt) {
		t.Errorf("minimal %q (%d) not shorter than alternation %q (%d)", min, len(min), alt, len(alt))
	}
	if !strings.Contains(min, "[") {
		t.Errorf("minimal %q did not compress the range to a class", min)
	}
}

func TestMinimalRegexpLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large DFA reconstruction")
	}
	var lang []uint32
	for v := uint32(0); v < 65536; v += 7 {
		lang = append(lang, v)
	}
	pat := MinimalRegexp(lang)
	re, err := Parse(pat)
	if err != nil {
		t.Fatalf("large minimal regexp unparseable: %v", err)
	}
	got := re.Language()
	if !languagesEqual(got, lang) {
		t.Fatalf("large minimal regexp accepts %d values, want %d", len(got), len(lang))
	}
}

func TestAlternationRegexp(t *testing.T) {
	if got := AlternationRegexp([]uint32{701, 702, 703}); got != "(701|702|703)" {
		t.Errorf("AlternationRegexp = %q", got)
	}
	re := mustParse(t, AlternationRegexp([]uint32{1, 65535}))
	if !re.MatchASN(1) || !re.MatchASN(65535) || re.MatchASN(2) {
		t.Error("alternation regexp wrong language")
	}
}

// testPerm is a fixed, easily-inverted permutation for rewrite tests:
// public ASNs are rotated by 1000 within the public range.
func testPerm(a uint32) uint32 {
	if a < 1 || a > 64511 {
		return a
	}
	return (a-1+1000)%64511 + 1
}

func TestRewriteASNLiterals(t *testing.T) {
	res, err := RewriteASN("_1239_", testPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	want := "_2239_"
	if res.Pattern != want {
		t.Errorf("RewriteASN(_1239_) = %q, want %q", res.Pattern, want)
	}
	if !res.Changed || res.Mapped != 1 {
		t.Errorf("unexpected result meta: %+v", res)
	}
}

func TestRewriteASNRange(t *testing.T) {
	res, err := RewriteASN("70[1-3]", testPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	re := mustParse(t, res.Pattern)
	for a := uint32(701); a <= 703; a++ {
		if !re.MatchASN(testPerm(a)) {
			t.Errorf("rewritten %q does not accept perm(%d)=%d", res.Pattern, a, testPerm(a))
		}
		if re.MatchASN(a) && testPerm(a) != a {
			// The original value should not be accepted unless it
			// happens to be the image of another member.
			img := false
			for b := uint32(701); b <= 703; b++ {
				if testPerm(b) == a {
					img = true
				}
			}
			if !img {
				t.Errorf("rewritten %q still accepts original %d", res.Pattern, a)
			}
		}
	}
}

// TestRewritePreservesLanguageBijection is the paper's correctness
// condition: for every ASN a, orig accepts a iff rewritten accepts perm(a).
func TestRewritePreservesLanguageBijection(t *testing.T) {
	patterns := []string{
		"70[1-3]",
		"_1239_",
		"(_1239_|_70[2-5]_)",
		"123[0-9]",
		"ـ", // exotic bytes should fail parse, skipped below
		"7..",
		"65[0-4]..",
	}
	for _, p := range patterns {
		orig, err := Parse(p)
		if err != nil {
			continue
		}
		for _, style := range []Style{Alternation, Minimal} {
			res, err := RewriteASN(p, testPerm, style)
			if err != nil {
				t.Fatalf("RewriteASN(%q): %v", p, err)
			}
			rew := mustParse(t, res.Pattern)
			origLang := orig.Language()
			wantSet := make(map[uint32]bool, len(origLang))
			for _, a := range origLang {
				wantSet[testPerm(a)] = true
			}
			gotLang := rew.Language()
			if len(gotLang) != len(wantSet) {
				t.Fatalf("style %v: rewrite of %q accepts %d values, want %d (pattern %q)",
					style, p, len(gotLang), len(wantSet), res.Pattern)
			}
			for _, v := range gotLang {
				if !wantSet[v] {
					t.Fatalf("style %v: rewrite of %q accepts %d which is not perm(orig)", style, p, v)
				}
			}
		}
	}
}

func TestRewritePrivateOnlyUnchanged(t *testing.T) {
	// 645[2-9][0-9] covers 64520-64599, all private.
	p := "645[2-9][0-9]"
	res, err := RewriteASN(p, testPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed || res.Pattern != p {
		t.Errorf("private-only pattern changed: %+v", res)
	}
}

func TestRewriteUniverseUnchanged(t *testing.T) {
	for _, p := range []string{".*", "[0-9]+", ".+|^$"} {
		res, err := RewriteASN(p, testPerm, Alternation)
		if err != nil {
			t.Fatalf("RewriteASN(%q): %v", p, err)
		}
		if res.Changed {
			t.Errorf("universe pattern %q was rewritten to %q", p, res.Pattern)
		}
	}
}

func TestRewriteMultiNumberPath(t *testing.T) {
	p := "_1239_.*_70[2-3]_"
	res, err := RewriteASN(p, testPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Pattern, "2239") {
		t.Errorf("1239 not rewritten in %q", res.Pattern)
	}
	if !strings.Contains(res.Pattern, strconv.Itoa(int(testPerm(702)))) ||
		!strings.Contains(res.Pattern, strconv.Itoa(int(testPerm(703)))) {
		t.Errorf("range atom not rewritten in %q", res.Pattern)
	}
	if !strings.Contains(res.Pattern, ".*") {
		t.Errorf("path wildcard destroyed in %q", res.Pattern)
	}
	if res.Atoms != 3 { // 1239, .*, 70[2-3]
		t.Errorf("Atoms = %d, want 3 (%q)", res.Atoms, res.Pattern)
	}
	if res.Mapped != 2 {
		t.Errorf("Mapped = %d, want 2 (%q)", res.Mapped, res.Pattern)
	}
}

func TestRewriteCommunity(t *testing.T) {
	valPerm := func(v uint32) uint32 { return v ^ 0x2A5A } // any bijection of 16 bits
	p := "701:7[1-5].."
	res, err := RewriteCommunity(p, testPerm, valPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	orig := mustParse(t, p)
	rew := mustParse(t, res.Pattern)
	// Spot-check the bijection on the cross product.
	for _, a := range []uint32{700, 701, 702} {
		for _, v := range []uint32{7100, 7355, 7599, 7600} {
			tok := strconv.Itoa(int(a)) + ":" + strconv.Itoa(int(v))
			mtok := strconv.Itoa(int(testPerm(a))) + ":" + strconv.Itoa(int(valPerm(v)))
			if orig.MatchToken(tok) != rew.MatchToken(mtok) {
				t.Errorf("community bijection broken at %s -> %s (pattern %q)", tok, mtok, res.Pattern)
			}
		}
	}
}

func TestRewriteCommunityAlternatives(t *testing.T) {
	valPerm := func(v uint32) uint32 { return (v + 1) & 0xFFFF }
	p := "(701:100|702:200)"
	res, err := RewriteCommunity(p, testPerm, valPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	rew := mustParse(t, res.Pattern)
	if !rew.MatchToken("1701:101") || !rew.MatchToken("1702:201") {
		t.Errorf("alternative halves not rewritten: %q", res.Pattern)
	}
	if rew.MatchToken("701:100") {
		t.Errorf("original community still accepted: %q", res.Pattern)
	}
}

func TestRewriteCommunityUnsplittable(t *testing.T) {
	if _, err := RewriteCommunity(".*", testPerm, func(v uint32) uint32 { return v }, Alternation); err == nil {
		t.Error("expected ErrUnsplittable for pattern without colon")
	}
}

func TestRewriteParseError(t *testing.T) {
	if _, err := RewriteASN("70[1-", testPerm, Alternation); err == nil {
		t.Error("expected parse error")
	}
}

func TestRewriteQuickBijectionProperty(t *testing.T) {
	// Property: for random small ranges, the rewrite maps the language
	// exactly through the permutation.
	f := func(base uint16, width uint8) bool {
		lo := uint32(base) % 60000
		hi := lo + uint32(width)%10
		loS, hiS := strconv.Itoa(int(lo)), strconv.Itoa(int(lo+9))
		if len(loS) != len(hiS) {
			return true // range spans a digit-length boundary; skip
		}
		// Build a pattern like "70[1-5]" from the common prefix.
		prefix := loS[:len(loS)-1]
		d1 := loS[len(loS)-1]
		d2 := byte('0' + (hi % 10))
		if d2 < d1 {
			d1, d2 = d2, d1
		}
		p := prefix + "[" + string(d1) + "-" + string(d2) + "]"
		orig, err := Parse(p)
		if err != nil {
			return false
		}
		res, err := RewriteASN(p, testPerm, Alternation)
		if err != nil {
			return false
		}
		rew, err := Parse(res.Pattern)
		if err != nil {
			return false
		}
		for _, a := range orig.Language() {
			if !rew.MatchASN(testPerm(a)) {
				return false
			}
		}
		return len(rew.Language()) == len(orig.Language())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatchToken(b *testing.B) {
	re, _ := Parse("(_1239_|_70[2-5]_)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.MatchToken("703")
	}
}

func BenchmarkLanguageEnumeration(b *testing.B) {
	re, _ := Parse("70[1-5]")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re.Language()
	}
}

func BenchmarkRewriteAlternation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RewriteASN("70[1-5]", testPerm, Alternation); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewriteMinimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RewriteASN("70[1-5]", testPerm, Minimal); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLanguageDFAMatchesNFA cross-checks the lazy-DFA enumeration against
// the direct NFA oracle.
func TestLanguageDFAMatchesNFA(t *testing.T) {
	patterns := []string{
		"70[1-3]", "_1239_", "(_1239_|_70[2-5]_)", ".*", "7..",
		"[^7]0*", "6451[12]", "^1?2?3?$", "(1|22|333)+", "",
	}
	for _, p := range patterns {
		re := mustParse(t, p)
		fast := re.Language()
		slow := re.languageNFA()
		if !languagesEqual(fast, slow) {
			t.Errorf("DFA/NFA language mismatch for %q: %d vs %d values", p, len(fast), len(slow))
		}
	}
}

// TestRewriteJunOSSpaceSeparatedPath: JunOS as-path regexps separate AS
// numbers with spaces ("1239 .*"); the space literal is a safe separator
// and each number rewrites independently.
func TestRewriteJunOSSpaceSeparatedPath(t *testing.T) {
	res, err := RewriteASN("1239 .* 70[1-3]", testPerm, Alternation)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Pattern, "2239") {
		t.Errorf("literal not rewritten: %q", res.Pattern)
	}
	if !strings.Contains(res.Pattern, " .* ") {
		t.Errorf("wildcard atom or spacing destroyed: %q", res.Pattern)
	}
	for a := uint32(701); a <= 703; a++ {
		if !strings.Contains(res.Pattern, strconv.Itoa(int(testPerm(a)))) {
			t.Errorf("range member perm(%d) missing: %q", a, res.Pattern)
		}
	}
	if res.Atoms != 3 || res.Mapped != 2 {
		t.Errorf("atoms=%d mapped=%d, want 3/2", res.Atoms, res.Mapped)
	}
}

// TestDecomposabilityKnownCases pins the analysis on the cases that
// motivated it.
func TestDecomposabilityKnownCases(t *testing.T) {
	safe := []string{"_1239_", "70[1-3]", "(_1239_|_70[2-5]_)", "_1239_.*_70[2-5]_", "1239 .* 701", "645[2-3][0-9]"}
	for _, p := range safe {
		re := mustParse(t, p)
		rw := &rewriter{needsRewrite: func(l []uint32) bool { return len(l) > 0 }}
		if !rw.decomposable(re.Root, false, false) {
			t.Errorf("%q should be decomposable", p)
		}
	}
	// "32(.|(59?))92" is all-digit and forms ONE atom — decomposable and
	// handled whole. The unsafe cases mix digit-edged groups with
	// boundaries so a digit run is only a fragment of a number.
	unsafePatterns := []string{"32(._|(59?))92", "3*((5_))*92"}
	for _, p := range unsafePatterns {
		re := mustParse(t, p)
		rw := &rewriter{needsRewrite: func(l []uint32) bool { return len(l) > 0 }}
		if rw.decomposable(re.Root, false, false) {
			t.Errorf("%q should NOT be decomposable", p)
		}
	}
}
