package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"confanon/internal/anonymizer"
	"confanon/internal/cregex"
	"confanon/internal/ipanon"
	"confanon/internal/passlist"
)

// A1Result is the §4.3 design-choice ablation: the data-structure-based
// (Minshall-extended) scheme versus the cryptography-based (Xu) scheme.
// The paper chooses the former because shaping the mapping (class
// preservation, subnet-address preservation, special passthrough) "is
// easier to implement" with a data structure; the latter needs only a key
// to be shared. The ablation quantifies both sides: per-address cost and
// which required properties each scheme satisfies.
type A1Result struct {
	TreeNsPerAddr      float64
	CryptoNsPerAddr    float64
	TreeClassPreserved float64 // fraction of sampled addresses keeping class
	CryptoClass        float64
	TreeSubnetZeros    float64 // fraction of subnet addresses keeping zero host part
	CryptoSubnetZeros  float64
	TreeSpecialFixed   bool
	CryptoSpecialFixed bool
}

// String renders the comparison.
func (r A1Result) String() string {
	return fmt.Sprintf("A1 IP schemes: tree %.0f ns/addr vs crypto %.0f ns/addr; class preserved %.0f%% vs %.0f%%; subnet zeros kept %.0f%% vs %.0f%%; specials fixed %v vs %v",
		r.TreeNsPerAddr, r.CryptoNsPerAddr, 100*r.TreeClassPreserved, 100*r.CryptoClass,
		100*r.TreeSubnetZeros, 100*r.CryptoSubnetZeros, r.TreeSpecialFixed, r.CryptoSpecialFixed)
}

// A1IPSchemes measures both schemes over a random corpus.
func A1IPSchemes(samples int) A1Result {
	if samples <= 0 {
		samples = 20000
	}
	rng := rand.New(rand.NewSource(77))
	addrs := make([]uint32, samples)
	for i := range addrs {
		addrs[i] = rng.Uint32()
	}
	subnetAddrs := make([]uint32, samples/10)
	for i := range subnetAddrs {
		subnetAddrs[i] = rng.Uint32() &^ 0xFF // /24 subnet addresses
	}
	specials := []uint32{0, 0xFFFFFFFF, 0xFFFFFF00, 0x000000FF, 0x7F000001, 0xE0000005}

	tree := ipanon.NewTree(ipanon.DefaultOptions([]byte("a1")))
	var key [32]byte
	copy(key[:], "a1-ablation-key-for-crypto-pan!!")
	crypto, _ := ipanon.NewCryptoPAn(key)

	var r A1Result
	start := time.Now()
	classKept := 0
	for _, a := range addrs {
		out := tree.MapV4(a)
		if ipanon.IsSpecial(a) || ipanon.Class(out) == ipanon.Class(a) {
			classKept++
		}
	}
	r.TreeNsPerAddr = float64(time.Since(start).Nanoseconds()) / float64(len(addrs))
	r.TreeClassPreserved = float64(classKept) / float64(len(addrs))

	start = time.Now()
	classKept = 0
	for _, a := range addrs {
		if ipanon.Class(crypto.MapV4(a)) == ipanon.Class(a) {
			classKept++
		}
	}
	r.CryptoNsPerAddr = float64(time.Since(start).Nanoseconds()) / float64(len(addrs))
	r.CryptoClass = float64(classKept) / float64(len(addrs))

	// Subnet-address preservation: map subnet addresses on fresh
	// structures (before any host in their /24).
	tree2 := ipanon.NewTree(ipanon.DefaultOptions([]byte("a1b")))
	zeros := 0
	for _, a := range subnetAddrs {
		if tree2.MapV4(a)&0xFF == 0 {
			zeros++
		}
	}
	r.TreeSubnetZeros = float64(zeros) / float64(len(subnetAddrs))
	zeros = 0
	for _, a := range subnetAddrs {
		if crypto.MapV4(a)&0xFF == 0 {
			zeros++
		}
	}
	r.CryptoSubnetZeros = float64(zeros) / float64(len(subnetAddrs))

	r.TreeSpecialFixed = true
	r.CryptoSpecialFixed = true
	for _, s := range specials {
		if tree.MapV4(s) != s {
			r.TreeSpecialFixed = false
		}
		if crypto.MapV4(s) != s {
			r.CryptoSpecialFixed = false
		}
	}
	return r
}

// A2Result is the §4.4 output-form ablation: the alternation regexp the
// paper produces versus the minimal-DFA reconstruction it mentions as
// available. Measures output length and construction time across language
// sizes.
type A2Result struct {
	Rows []A2Row
}

// A2Row is one language-size sample.
type A2Row struct {
	LanguageSize int
	AltLen       int
	MinLen       int
	DFAStates    int
	AltNs        int64
	MinNs        int64
}

// String renders the table.
func (r A2Result) String() string {
	var b strings.Builder
	b.WriteString("A2 regexp forms (language size: alternation chars vs minimal chars, DFA states):")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "\n  |L|=%-6d alt=%-8d min=%-7d states=%-5d alt=%6dns min=%dns",
			row.LanguageSize, row.AltLen, row.MinLen, row.DFAStates, row.AltNs, row.MinNs)
	}
	return b.String()
}

// A2RegexForms compares the two forms over contiguous and scattered
// languages of increasing size.
func A2RegexForms() A2Result {
	rng := rand.New(rand.NewSource(88))
	var r A2Result
	for _, size := range []int{3, 10, 50, 200, 1000, 5000} {
		// Scattered random language (worst case for both forms).
		seen := make(map[uint32]bool)
		var lang []uint32
		for len(lang) < size {
			v := uint32(rng.Intn(65536))
			if !seen[v] {
				seen[v] = true
				lang = append(lang, v)
			}
		}
		sortLang(lang)
		start := time.Now()
		alt := cregex.AlternationRegexp(lang)
		altNs := time.Since(start).Nanoseconds()
		start = time.Now()
		min := cregex.MinimalRegexp(lang)
		minNs := time.Since(start).Nanoseconds()
		r.Rows = append(r.Rows, A2Row{
			LanguageSize: size, AltLen: len(alt), MinLen: len(min),
			DFAStates: cregex.MinimalDFASize(lang), AltNs: altNs, MinNs: minNs,
		})
	}
	return r
}

func sortLang(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// A3Result is the §4.2 segmentation ablation: with the two segmentation
// rules, identifiers like Ethernet0/0 keep their keyword part; without
// them (whole-word pass-list lookup only), the interface type is hashed
// and the information destroyed.
type A3Result struct {
	Words            int
	PreservedWith    int
	PreservedWithout int
}

// String renders the comparison.
func (r A3Result) String() string {
	return fmt.Sprintf("A3 segmentation: of %d compound identifiers, %d keep their type keyword with segmentation, %d without (information destroyed)",
		r.Words, r.PreservedWith, r.PreservedWithout)
}

// A3Segmentation measures keyword survival for compound interface
// identifiers with and without the segmentation rules.
func A3Segmentation() A3Result {
	words := []string{
		"Ethernet0", "Ethernet0/0", "FastEthernet0/1", "GigabitEthernet0/0/3",
		"Serial1/0.5", "Serial0/0:23", "POS2/1", "Loopback0", "Tunnel100",
		"ATM1/0.100", "Multilink8", "Dialer1", "Vlan120", "Port-channel2",
	}
	pl := passlist.Builtin()
	r := A3Result{Words: len(words)}
	a := anonymizer.New(anonymizer.Options{Salt: []byte("a3")})
	for _, w := range words {
		// With segmentation (the real anonymizer path): anonymize a
		// line referencing the identifier and check the alphabetic type
		// keyword survives.
		out := a.AnonymizeText("interface " + w + "\n")
		kw := leadingAlpha(w)
		if strings.Contains(out, kw) {
			r.PreservedWith++
		}
		// Without segmentation: whole-word lookup fails for compounds,
		// so the word would be hashed.
		if pl.Contains(w) {
			r.PreservedWithout++
		}
	}
	return r
}

func leadingAlpha(w string) string {
	for i := 0; i < len(w); i++ {
		c := w[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return w[:i]
		}
	}
	return w
}
