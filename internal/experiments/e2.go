package experiments

import (
	"strings"

	"confanon/internal/anonymizer"
	"confanon/internal/config"
	"confanon/internal/cregex"
	"confanon/internal/ipanon"
)

// Figure1 is the paper's worked example configuration (§2, Figure 1).
const Figure1 = `hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 2.2.129.2 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.2.2.2 remote-as 701
 neighbor 2.2.2.2 route-map UUNET-import in
 neighbor 2.2.2.2 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
!
route-map UUNET-import permit 20
!
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 any
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
end
`

// E2Figure1 anonymizes Figure 1 and verifies each requirement the paper
// enumerates for it: (1) comments removed; (2) the owner's public ASN
// transformed; (3) publicly routable addresses transformed with masks
// untouched and subnet structure preserved; (4) all external-peer data
// (addresses, ASNs, route-map names, communities) transformed with
// referential integrity and regexp languages preserved.
func E2Figure1() E2Result {
	a := anonymizer.New(anonymizer.Options{Salt: []byte("figure1")})
	out := a.AnonymizeText(Figure1)
	c := config.Parse(out)
	var r E2Result
	check := func(name string, ok bool) { r.Checks = append(r.Checks, E2Check{name, ok}) }

	// (1) Comments, banner text, and hostname identity removed.
	leakFree := true
	for _, s := range []string{"foo", "Foo", "FooNet", "LAX", "lax", "Main", "offices", "sfo", "prohibited"} {
		if strings.Contains(out, s) {
			leakFree = false
		}
	}
	check("comments-and-identity-removed", leakFree)

	// (2) Owner ASN 1111 and peer ASNs gone as standalone tokens.
	asnGone := true
	for _, line := range strings.Split(out, "\n") {
		for _, w := range strings.Fields(line) {
			if w == "1111" || w == "701" || w == "1239" {
				asnGone = false
			}
		}
	}
	check("public-asns-permuted", asnGone)

	// (3) Addresses moved, masks fixed.
	check("netmasks-unchanged",
		strings.Contains(out, "255.255.255.0") && strings.Contains(out, "255.255.255.252") &&
			strings.Contains(out, "0.0.0.255"))
	check("addresses-changed",
		!strings.Contains(out, "1.1.1.1 ") && !strings.Contains(out, " 2.2.2.2\n") &&
			!strings.Contains(out, "1.1.1.1\n"))

	// Subnet structure: RIP classful net contains the interface; ACL
	// source equals the interface subnet; class preserved.
	e0 := c.Interface("Ethernet0")
	okSubnet := false
	okClass := false
	if c.RIP != nil && len(c.RIP.Networks) == 1 && e0 != nil && e0.HasAddress {
		net := c.RIP.Networks[0]
		okSubnet = net&config.LenToMask(8) == e0.Address.Addr&config.LenToMask(8) &&
			net&^config.LenToMask(8) == 0
		okClass = ipanon.Class(net) == 'A'
	}
	check("subnet-contains-preserved", okSubnet)
	check("class-preserved", okClass)
	okACL := false
	if acl := c.AccessList(143); acl != nil && len(acl.Entries) == 1 && e0 != nil {
		okACL = acl.Entries[0].Src == e0.Address.Addr&config.LenToMask(24)
	}
	check("acl-interface-subnet-relationship", okACL)

	// (4) Referential integrity: neighbor's route-maps exist under their
	// new names.
	okRefs := false
	if c.BGP != nil && len(c.BGP.Neighbors) == 1 {
		nb := c.BGP.Neighbors[0]
		okRefs = nb.RouteMapIn != "" && nb.RouteMapIn != "UUNET-import" &&
			c.RouteMap(nb.RouteMapIn) != nil && c.RouteMap(nb.RouteMapOut) != nil
	}
	check("referential-integrity", okRefs)

	// Regexp language preserved under the permutation.
	okRegex := false
	if al := c.ASPathList(50); al != nil && len(al.Entries) == 1 {
		if re, err := cregex.Parse(al.Entries[0].Regex); err == nil {
			okRegex = true
			for _, v := range []uint32{1239, 702, 703, 704, 705} {
				if !re.MatchASN(a.MapASN(v)) {
					okRegex = false
				}
			}
			if len(re.Language()) != 5 {
				okRegex = false
			}
		}
	}
	check("aspath-regexp-language-preserved", okRegex)

	// Community regexp parseable and consistent with the literal
	// community in the export map.
	okComm := false
	if cl := c.CommunityList(100); cl != nil && len(cl.Entries) == 1 {
		if re, err := cregex.Parse(cl.Entries[0].Expr); err == nil {
			for _, rm := range c.RouteMaps {
				for _, clause := range rm.Clauses {
					for _, set := range clause.Sets {
						if set.Type == "community" && len(set.Args) > 0 && re.MatchToken(set.Args[0]) {
							okComm = true
						}
					}
				}
			}
		}
	}
	check("community-regexp-consistent-with-literal", okComm)

	// Leak report clean.
	check("leak-report-clean", len(a.LeakReport(out)) == 0)
	return r
}
