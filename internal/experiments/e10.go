package experiments

import (
	"fmt"
	"sort"

	"confanon/internal/anonymizer"
	"confanon/internal/fingerprint"
	"confanon/internal/junos"
	"confanon/internal/netgen"
	"confanon/internal/validate"
)

// E10Result exercises the paper's footnote 2 — "the techniques are
// directly applicable to JunOS and other router configuration languages"
// — end to end: the same networks rendered in the JunOS dialect are
// anonymized, parsed back, and must pass both validation suites; and the
// design-relevant structure recovered from the JunOS rendering must agree
// with the structure of the IOS rendering of the same network.
type E10Result struct {
	Networks        int
	Suite1Passed    int
	Suite2Passed    int
	CrossDialectEq  int // networks whose subnet fingerprint matches across dialects
	EBGPStructureEq int // networks whose eBGP session multiset matches across dialects
}

// String renders the summary row.
func (r E10Result) String() string {
	return fmt.Sprintf("E10 JunOS: %d networks — suite1 %d/%d, suite2 %d/%d; cross-dialect subnet fingerprints equal %d/%d, eBGP structure equal %d/%d (paper: techniques 'directly applicable to JunOS')",
		r.Networks, r.Suite1Passed, r.Networks, r.Suite2Passed, r.Networks,
		r.CrossDialectEq, r.Networks, r.EBGPStructureEq, r.Networks)
}

// E10JunOS runs the JunOS pipeline over a population.
func E10JunOS(networks int) E10Result {
	if networks <= 0 {
		networks = 10
	}
	res := E10Result{Networks: networks}
	for i := 0; i < networks; i++ {
		kind := netgen.Backbone
		if i%2 == 1 {
			kind = netgen.Enterprise
		}
		n := netgen.Generate(netgen.Params{
			Seed: int64(11000 + i), Kind: kind, Routers: 10 + i,
			UseASPathAlternation: i%3 == 0,
			UseCommunityRegexps:  i%4 == 0,
		})

		// JunOS rendering of every router.
		junosFiles := make(map[string]string, len(n.Routers))
		iosFiles := make(map[string]string, len(n.Routers))
		for _, r := range n.Routers {
			junosFiles[r.Config.Hostname+"-junos"] = junos.Render(r.Config)
			iosFiles[r.Config.Hostname+"-confg"] = r.Config.Render()
		}

		// Anonymize the JunOS corpus and run the suites.
		post := anonymizeFiles(n.Salt, junosFiles)
		pre := validate.ParseAll(junosFiles)
		anon := validate.ParseAll(post)
		if len(validate.Suite1(pre, anon)) == 0 {
			res.Suite1Passed++
		}
		if validate.Suite2(pre, anon).OK() {
			res.Suite2Passed++
		}

		// Cross-dialect structural agreement on the un-anonymized data.
		iosPre := validate.ParseAll(iosFiles)
		if fingerprint.SubnetOf(iosPre).Key() == fingerprint.SubnetOf(pre).Key() {
			res.CrossDialectEq++
		}
		if fingerprint.PeeringOf(iosPre).Key() == fingerprint.PeeringOf(pre).Key() {
			res.EBGPStructureEq++
		}
	}
	return res
}

// anonymizeFiles anonymizes a named file set with prescan.
func anonymizeFiles(salt string, files map[string]string) map[string]string {
	a := anonymizer.New(anonymizer.Options{Salt: []byte(salt)})
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a.Prescan(files[name])
	}
	post := make(map[string]string, len(files))
	for _, name := range names {
		post[name] = a.AnonymizeText(files[name])
	}
	return post
}
