// Package experiments implements the reproduction of every quantitative
// claim in the paper's evaluation, one function per experiment (E1–E9 in
// DESIGN.md), plus the ablations (A1–A3). Each returns a structured result
// with a String() summary; bench_test.go at the repository root wraps them
// as benchmarks, and cmd/confexp prints the full paper-vs-measured report
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"confanon/internal/anonymizer"
	"confanon/internal/config"
	"confanon/internal/netgen"
)

// population builds the standard 31-network corpus used by several
// experiments, with the paper's regexp-prevalence mix. scale (0,1]
// shrinks router counts for fast runs.
func population(baseSeed int64, scale float64) []*netgen.Network {
	if scale <= 0 {
		scale = 1
	}
	nets := make([]*netgen.Network, 0, 31)
	for i := 0; i < 31; i++ {
		kind := netgen.Backbone
		if i%2 == 1 {
			kind = netgen.Enterprise
		}
		// Size mix: mostly modest networks, a few large, echoing a
		// 7,655-router/31-network dataset (mean ~247).
		base := 20 + i*11
		if i%7 == 0 {
			base *= 3
		}
		routers := int(float64(base) * scale)
		if routers < 6 {
			routers = 6
		}
		nets = append(nets, netgen.Generate(netgen.Params{
			Seed: baseSeed + int64(i), Kind: kind, Routers: routers,
			UseASPathAlternation: i%3 == 0,                      // ~10/31
			UsePublicASNRanges:   i == 4 || i == 20,             // 2/31
			UsePrivateASNRanges:  i == 7 || i == 15 || i == 23,  // 3/31
			UseCommunityRegexps:  i%6 == 2 || i == 2 || i == 14, // ~5/31
			UseCommunityRanges:   i == 2 || i == 14,             // 2/31
			Compartmentalized:    i%3 == 1,                      // ~10/31
		}))
	}
	return nets
}

func percentile(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// parseNetwork parses every rendered config of a network.
func parseNetwork(n *netgen.Network) []*config.Config {
	files := n.RenderAll()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*config.Config, 0, len(files))
	for _, name := range names {
		out = append(out, config.Parse(files[name]))
	}
	return out
}

// anonymizeNetwork runs the full prescan+anonymize pipeline over a
// network with its own salt, returning the anonymizer and the output.
func anonymizeNetwork(n *netgen.Network) (*anonymizer.Anonymizer, map[string]string) {
	a := anonymizer.New(anonymizer.Options{Salt: []byte(n.Salt)})
	files := n.RenderAll()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a.Prescan(files[name])
	}
	post := make(map[string]string, len(files))
	for _, name := range names {
		post[name] = a.AnonymizeText(files[name])
	}
	return a, post
}

func parseFiles(files map[string]string) []*config.Config {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*config.Config, 0, len(files))
	for _, name := range names {
		out = append(out, config.Parse(files[name]))
	}
	return out
}

func joinCounts(h map[int]int) string {
	var keys []int
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("/%d:%d", k, h[k]))
	}
	return strings.Join(parts, " ")
}
