package experiments

import (
	"strings"
	"testing"
)

func TestE1DatasetShape(t *testing.T) {
	r := E1Dataset(0.25)
	if r.Networks != 31 {
		t.Errorf("networks = %d", r.Networks)
	}
	if r.Routers < 100 {
		t.Errorf("routers = %d, too few", r.Routers)
	}
	if !(r.MinLines < r.P25 && r.P25 < r.P90 && r.P90 <= r.MaxLines) {
		t.Errorf("percentiles not ordered: %+v", r)
	}
	// Shape check against the paper: small configs well under 200
	// lines exist, large configs near or above 1000 lines exist.
	if r.MinLines > 100 {
		t.Errorf("no small configs: min=%d", r.MinLines)
	}
	if r.MaxLines < 400 {
		t.Errorf("no large configs at this scale: max=%d", r.MaxLines)
	}
	if r.String() == "" {
		t.Error("empty summary")
	}
}

func TestE2AllChecksPass(t *testing.T) {
	r := E2Figure1()
	if !r.OK() {
		t.Errorf("E2 failed: %s", r)
	}
	if len(r.Checks) < 10 {
		t.Errorf("only %d checks", len(r.Checks))
	}
}

func TestE3CommentStats(t *testing.T) {
	r := E3Comments(40, 6) // reduced population for test speed
	if !r.AllStripped {
		t.Error("comments survived anonymization")
	}
	// Population should bracket the paper's statistics loosely.
	if r.MeanPct < 0.3 || r.MeanPct > 5 {
		t.Errorf("mean comment fraction %.2f%% implausible (paper 1.5%%)", r.MeanPct)
	}
	if r.P90Pct < r.MeanPct {
		t.Errorf("p90 %.2f%% below mean %.2f%%", r.P90Pct, r.MeanPct)
	}
}

func TestE4RegexpPrevalenceAndCorrectness(t *testing.T) {
	r := E4Regexps(0.2)
	if r.WithPublicRanges != 2 || r.WithPrivateRanges != 3 || r.WithCommunityRange != 2 {
		t.Errorf("prevalence off: %+v", r)
	}
	if r.WithAlternation < 8 || r.WithAlternation > 13 {
		t.Errorf("alternation prevalence %d far from paper's 10", r.WithAlternation)
	}
	if r.WithCommunityRegexp < 4 || r.WithCommunityRegexp > 8 {
		t.Errorf("community regexp prevalence %d far from paper's 5", r.WithCommunityRegexp)
	}
	if r.RewriteMismatches != 0 {
		t.Errorf("rewrite mismatches: %+v", r)
	}
	if r.RewritesVerified == 0 {
		t.Error("no rewrites verified")
	}
}

func TestE5AndE6AllPass(t *testing.T) {
	r5 := E5Suite1(0.15)
	if r5.Passed != r5.Networks {
		t.Errorf("suite 1 failures: %s", r5)
	}
	r6 := E6Suite2(0.15)
	if r6.Passed != r6.Networks {
		t.Errorf("suite 2 failures: %s", r6)
	}
}

func TestE7Converges(t *testing.T) {
	r := E7LeakIteration(6)
	if !r.Converged {
		t.Fatalf("leak iteration did not converge: %s", r)
	}
	if r.Iterations >= 5 {
		t.Errorf("took %d iterations, paper reports <5", r.Iterations)
	}
}

func TestE8Fingerprints(t *testing.T) {
	r := E8Fingerprint(0.15)
	if r.FingerprintsSurvive != r.Networks {
		t.Errorf("fingerprints altered by anonymization: %s", r)
	}
	if r.SubnetUnique.Unique < r.Networks*3/4 {
		t.Errorf("subnet fingerprints unexpectedly coarse: %s", r.SubnetUnique)
	}
	if r.Compartmentalized < 8 || r.Compartmentalized > 13 {
		t.Errorf("compartmentalized = %d, want ~10 of 31", r.Compartmentalized)
	}
}

func TestE9Throughput(t *testing.T) {
	r := E9Throughput(20000)
	if r.Lines < 20000 {
		t.Errorf("only %d lines processed", r.Lines)
	}
	if r.LinesPerSec < 1000 {
		t.Errorf("throughput %.0f lines/s suspiciously low", r.LinesPerSec)
	}
	if r.LeaksFound != 0 {
		t.Errorf("confirmed leaks at scale: %d", r.LeaksFound)
	}
}

func TestA1Properties(t *testing.T) {
	r := A1IPSchemes(4000)
	if !r.TreeSpecialFixed {
		t.Error("tree does not fix specials")
	}
	if r.CryptoSpecialFixed {
		t.Error("crypto-pan unexpectedly fixes specials (it cannot)")
	}
	if r.TreeClassPreserved < 0.999 {
		t.Errorf("tree class preservation %.3f", r.TreeClassPreserved)
	}
	if r.CryptoClass > 0.9 {
		t.Errorf("crypto-pan class preservation %.3f implausibly high", r.CryptoClass)
	}
	if r.TreeSubnetZeros < 0.999 {
		t.Errorf("tree subnet zeros %.3f", r.TreeSubnetZeros)
	}
	if r.CryptoSubnetZeros > 0.2 {
		t.Errorf("crypto-pan subnet zeros %.3f implausibly high", r.CryptoSubnetZeros)
	}
}

func TestA2MinimalShorterForLargeLanguages(t *testing.T) {
	r := A2RegexForms()
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	last := r.Rows[len(r.Rows)-1]
	if last.MinLen >= last.AltLen {
		t.Errorf("minimal form not shorter at |L|=%d: min=%d alt=%d",
			last.LanguageSize, last.MinLen, last.AltLen)
	}
	if !strings.Contains(r.String(), "A2") {
		t.Error("summary missing")
	}
}

func TestA3SegmentationPreservesTypes(t *testing.T) {
	r := A3Segmentation()
	if r.PreservedWith < r.Words-2 {
		t.Errorf("segmentation preserved only %d/%d type keywords", r.PreservedWith, r.Words)
	}
	if r.PreservedWithout != 0 {
		t.Errorf("whole-word lookup should preserve none, got %d", r.PreservedWithout)
	}
}

func TestE10JunOS(t *testing.T) {
	r := E10JunOS(6)
	if r.Suite1Passed != r.Networks || r.Suite2Passed != r.Networks {
		t.Errorf("JunOS suites failed: %s", r)
	}
	if r.CrossDialectEq != r.Networks {
		t.Errorf("cross-dialect subnet fingerprints diverge: %s", r)
	}
	if r.EBGPStructureEq != r.Networks {
		t.Errorf("cross-dialect eBGP structure diverges: %s", r)
	}
}
