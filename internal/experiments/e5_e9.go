package experiments

import (
	"fmt"
	"time"

	"confanon/internal/anonymizer"
	"confanon/internal/fingerprint"
	"confanon/internal/netgen"
	"confanon/internal/validate"
)

// E5Result reproduces validation suite 1 (§5): independent characteristics
// preserved across the whole population.
type E5Result struct {
	Networks int
	Passed   int
	Diffs    []string
}

// String renders the paper-vs-measured row.
func (r E5Result) String() string {
	s := fmt.Sprintf("E5 suite 1: %d/%d networks preserve all independent characteristics (paper: all)", r.Passed, r.Networks)
	if len(r.Diffs) > 0 {
		s += fmt.Sprintf("; sample diff: %s", r.Diffs[0])
	}
	return s
}

// E5Suite1 anonymizes the population and compares characteristics.
func E5Suite1(scale float64) E5Result {
	nets := population(1000, scale)
	res := E5Result{Networks: len(nets)}
	for _, n := range nets {
		pre := parseNetwork(n)
		_, postFiles := anonymizeNetwork(n)
		post := parseFiles(postFiles)
		diffs := validate.Suite1(pre, post)
		if len(diffs) == 0 {
			res.Passed++
		} else {
			res.Diffs = append(res.Diffs, diffs...)
		}
	}
	return res
}

// E6Result reproduces validation suite 2 (§5): the routing design
// extracted from anonymized configs is identical to the original's.
type E6Result struct {
	Networks int
	Passed   int
}

// String renders the paper-vs-measured row.
func (r E6Result) String() string {
	return fmt.Sprintf("E6 suite 2: %d/%d networks yield identical routing-design signatures pre/post (paper: designs match)", r.Passed, r.Networks)
}

// E6Suite2 extracts and compares routing designs across the population.
func E6Suite2(scale float64) E6Result {
	nets := population(1000, scale)
	res := E6Result{Networks: len(nets)}
	for _, n := range nets {
		pre := parseNetwork(n)
		_, postFiles := anonymizeNetwork(n)
		post := parseFiles(postFiles)
		if validate.Suite2(pre, post).OK() {
			res.Passed++
		}
	}
	return res
}

// E7Result reproduces the iterative leak-closure claim (§6.1): "the
// iteration closes quickly, requiring fewer than 5 iterations".
type E7Result struct {
	SeededLeaks int
	Iterations  int
	Converged   bool
}

// String renders the paper-vs-measured row.
func (r E7Result) String() string {
	return fmt.Sprintf("E7 leak iteration: %d seeded out-of-context ASN leaks closed in %d iterations, converged=%v (paper: <5 iterations over 4.3M lines)",
		r.SeededLeaks, r.Iterations, r.Converged)
}

// E7LeakIteration seeds a corpus with ASNs in contexts none of the 12 ASN
// rules recognize (vendor-specific commands), then runs the §6.1 loop:
// anonymize, collect the leak report, add a rule per dangerous token,
// repeat until the report is clean.
func E7LeakIteration(networks int) E7Result {
	if networks <= 0 {
		networks = 8
	}
	// Build a corpus with unusual ASN-bearing lines appended.
	var files []string
	for i := 0; i < networks; i++ {
		n := netgen.Generate(netgen.Params{Seed: int64(5000 + i), Routers: 8})
		for _, text := range n.RenderAll() {
			switch i % 4 {
			case 0:
				text += "vendor peer-monitor remote 701 enable\n"
			case 1:
				text += "legacy-filter block-origin 1239\n"
			case 2:
				text += "custom probe target-as 7018 interval 30\n"
			}
			files = append(files, text)
		}
	}
	res := E7Result{SeededLeaks: 3}
	var extraRules []string
	for iter := 1; iter <= 6; iter++ {
		a := anonymizer.New(anonymizer.Options{Salt: []byte("e7")})
		for _, r := range extraRules {
			a.AddSensitiveToken(r)
		}
		for _, f := range files {
			a.Prescan(f)
		}
		dirty := 0
		seen := map[string]bool{}
		for _, f := range files {
			out := a.AnonymizeText(f)
			for _, l := range a.LeakReport(out) {
				if l.LikelyFalsePositive {
					continue
				}
				dirty++
				if !seen[l.Tok] {
					seen[l.Tok] = true
					extraRules = append(extraRules, l.Tok)
				}
			}
		}
		res.Iterations = iter
		if dirty == 0 {
			res.Converged = true
			break
		}
	}
	return res
}

// E8Result reproduces the §6 fingerprinting analysis: fingerprints survive
// anonymization (the attack premise), subnet fingerprints are near-unique
// (the conjectured risk), peering fingerprints are coarser for edge
// networks, and ~10/31 networks are compartmentalized against insiders.
type E8Result struct {
	Networks            int
	FingerprintsSurvive int
	SubnetUnique        fingerprint.Uniqueness
	PeeringUnique       fingerprint.Uniqueness
	Compartmentalized   int
}

// String renders the paper-vs-measured rows.
func (r E8Result) String() string {
	return fmt.Sprintf("E8 fingerprints: survive anonymization %d/%d; subnet %s; peering %s; compartmentalized %d/%d (paper 10/31)",
		r.FingerprintsSurvive, r.Networks, r.SubnetUnique, r.PeeringUnique,
		r.Compartmentalized, r.Networks)
}

// E8Fingerprint runs the attack study over the population.
func E8Fingerprint(scale float64) E8Result {
	nets := population(1000, scale)
	res := E8Result{Networks: len(nets)}
	var subnetKeys, peeringKeys []string
	for _, n := range nets {
		pre := parseNetwork(n)
		_, postFiles := anonymizeNetwork(n)
		post := parseFiles(postFiles)
		sPre, sPost := fingerprint.SubnetOf(pre).Key(), fingerprint.SubnetOf(post).Key()
		pPre, pPost := fingerprint.PeeringOf(pre).Key(), fingerprint.PeeringOf(post).Key()
		if sPre == sPost && pPre == pPost {
			res.FingerprintsSurvive++
		}
		subnetKeys = append(subnetKeys, sPost)
		peeringKeys = append(peeringKeys, pPost)
		if fingerprint.Compartmentalized(post) {
			res.Compartmentalized++
		}
	}
	res.SubnetUnique = fingerprint.Analyze(subnetKeys)
	res.PeeringUnique = fingerprint.Analyze(peeringKeys)
	return res
}

// E9Result reproduces the scale claim: 4.3 million configuration lines
// anonymized fully automatically.
type E9Result struct {
	Lines       int
	Routers     int
	Elapsed     time.Duration
	LinesPerSec float64
	LeaksFound  int
}

// String renders the paper-vs-measured row.
func (r E9Result) String() string {
	return fmt.Sprintf("E9 throughput: %d lines across %d routers in %s (%.0f lines/s), %d confirmed leaks (paper: 4.3M lines, fully automated)",
		r.Lines, r.Routers, r.Elapsed.Round(time.Millisecond), r.LinesPerSec, r.LeaksFound)
}

// E9Throughput anonymizes generated corpora until at least targetLines
// configuration lines have been processed, measuring wall-clock rate.
func E9Throughput(targetLines int) E9Result {
	if targetLines <= 0 {
		targetLines = 100000
	}
	res := E9Result{}
	start := time.Now()
	seed := int64(9000)
	for res.Lines < targetLines {
		n := netgen.Generate(netgen.Params{Seed: seed, Routers: 60})
		seed++
		a, post := anonymizeNetwork(n)
		s := a.Stats()
		res.Lines += int(s.Lines)
		res.Routers += int(s.Files)
		for _, l := range a.LeakReport(postToSlice(post)) {
			if !l.LikelyFalsePositive {
				res.LeaksFound++
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.LinesPerSec = float64(res.Lines) / res.Elapsed.Seconds()
	return res
}

func postToSlice(files map[string]string) string {
	var b []byte
	for _, text := range files {
		b = append(b, text...)
	}
	return string(b)
}
