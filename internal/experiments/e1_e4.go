package experiments

import (
	"fmt"
	"sort"
	"strings"

	"confanon/internal/cregex"
	"confanon/internal/netgen"
)

// E1Result reproduces the dataset-shape claims of §2: "Typical configs in
// production networks vary from 50 to 10,000 lines — in our dataset of
// 7655 routers, the 25th percentile was 183 lines and 90th percentile was
// 1123 lines."
type E1Result struct {
	Networks   int
	Routers    int
	TotalLines int
	MinLines   int
	P25        int
	P50        int
	P90        int
	MaxLines   int
}

// String renders the paper-vs-measured row.
func (r E1Result) String() string {
	return fmt.Sprintf("E1 dataset: %d networks, %d routers, %d lines; per-config lines min=%d p25=%d p50=%d p90=%d max=%d (paper: 31 networks, 7655 routers, ~4.3M lines; 50..10000, p25=183, p90=1123)",
		r.Networks, r.Routers, r.TotalLines, r.MinLines, r.P25, r.P50, r.P90, r.MaxLines)
}

// E1Dataset generates the 31-network corpus and measures its shape.
// scale=1 approaches the paper's scale; smaller values shrink it
// proportionally for quick runs.
func E1Dataset(scale float64) E1Result {
	nets := population(1000, scale)
	var lineCounts []int
	res := E1Result{Networks: len(nets)}
	for _, n := range nets {
		for _, text := range n.RenderAll() {
			res.Routers++
			lines := strings.Count(text, "\n")
			lineCounts = append(lineCounts, lines)
			res.TotalLines += lines
		}
	}
	sort.Ints(lineCounts)
	res.MinLines = lineCounts[0]
	res.MaxLines = lineCounts[len(lineCounts)-1]
	res.P25 = percentile(lineCounts, 0.25)
	res.P50 = percentile(lineCounts, 0.50)
	res.P90 = percentile(lineCounts, 0.90)
	return res
}

// E2Check is one requirement verified on the Figure 1 config.
type E2Check struct {
	Name string
	OK   bool
}

// E2Result verifies every anonymization requirement the paper walks
// through on its Figure 1 example (§2): comments removed, owner ASN and
// peer data transformed, addresses prefix-preservingly mapped with masks
// untouched, referential integrity and regexp languages preserved.
type E2Result struct {
	Checks []E2Check
}

// OK reports whether every check passed.
func (r E2Result) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the checklist.
func (r E2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 Figure 1: %d checks", len(r.Checks))
	if r.OK() {
		b.WriteString(", all pass")
	} else {
		for _, c := range r.Checks {
			if !c.OK {
				fmt.Fprintf(&b, "; FAIL %s", c.Name)
			}
		}
	}
	return b.String()
}

// E3Result reproduces the comment statistics of §4.2: "Among a dataset of
// 173 networks, an average of 1.5% of the words were found to be comments
// and removed (90th percentile 6%)."
type E3Result struct {
	Networks    int
	MeanPct     float64
	P90Pct      float64
	AllStripped bool
}

// String renders the paper-vs-measured row.
func (r E3Result) String() string {
	return fmt.Sprintf("E3 comments: %d networks, mean %.2f%% of words were comments (paper 1.5%%), p90 %.2f%% (paper 6%%), all stripped=%v",
		r.Networks, r.MeanPct, r.P90Pct, r.AllStripped)
}

// E3Comments generates a 173-network population, anonymizes each, and
// measures the fraction of words removed as comments.
func E3Comments(networks int, routersPer int) E3Result {
	if networks <= 0 {
		networks = 173
	}
	if routersPer <= 0 {
		routersPer = 10
	}
	var fracs []float64
	allStripped := true
	for i := 0; i < networks; i++ {
		kind := netgen.Backbone
		if i%2 == 1 {
			kind = netgen.Enterprise
		}
		n := netgen.Generate(netgen.Params{Seed: int64(3000 + i), Kind: kind, Routers: routersPer})
		a, post := anonymizeNetwork(n)
		s := a.Stats()
		if s.WordsTotal > 0 {
			fracs = append(fracs, float64(s.CommentWordsRemoved)/float64(s.WordsTotal))
		}
		// Verify stripping: no "! text" comment lines survive.
		for _, text := range post {
			for _, line := range strings.Split(text, "\n") {
				trimmed := strings.TrimSpace(line)
				if strings.HasPrefix(trimmed, "! ") {
					allStripped = false
				}
			}
		}
	}
	sort.Float64s(fracs)
	sum := 0.0
	for _, f := range fracs {
		sum += f
	}
	return E3Result{
		Networks:    networks,
		MeanPct:     100 * sum / float64(len(fracs)),
		P90Pct:      100 * fracs[int(0.9*float64(len(fracs)-1))],
		AllStripped: allStripped,
	}
}

// E4Result reproduces the regexp-prevalence and rewrite-correctness claims
// of §4.4/§4.5: networks using ranges over public ASNs (2/31), over
// private ASNs (3/31), alternation (10/31), community regexps (5/31),
// community ranges (2/31) — and every rewritten regexp accepting exactly
// the permuted language.
type E4Result struct {
	Networks            int
	WithPublicRanges    int
	WithPrivateRanges   int
	WithAlternation     int
	WithCommunityRegexp int
	WithCommunityRange  int
	RegexpsRewritten    int
	RewritesVerified    int
	RewriteMismatches   int
}

// String renders the paper-vs-measured row.
func (r E4Result) String() string {
	return fmt.Sprintf("E4 regexps: of %d networks — public ranges %d (paper 2), private ranges %d (paper 3), alternation %d (paper 10), community regexps %d (paper 5), community ranges %d (paper 2); %d regexps rewritten, %d verified, %d mismatches",
		r.Networks, r.WithPublicRanges, r.WithPrivateRanges, r.WithAlternation,
		r.WithCommunityRegexp, r.WithCommunityRange,
		r.RegexpsRewritten, r.RewritesVerified, r.RewriteMismatches)
}

// E4Regexps measures prevalence over the standard population and verifies
// every as-path rewrite end-to-end: for each pre-anonymization as-path
// regexp, the post-anonymization regexp must accept exactly the permuted
// language.
func E4Regexps(scale float64) E4Result {
	nets := population(1000, scale)
	res := E4Result{Networks: len(nets)}
	for _, n := range nets {
		pubRange, privRange, alt, commRe, commRange := false, false, false, false, false
		preCfgs := parseNetwork(n)
		for _, c := range preCfgs {
			for _, al := range c.ASPathLists {
				for _, e := range al.Entries {
					if strings.Contains(e.Regex, "|") {
						alt = true
					}
					if strings.Contains(e.Regex, "[") {
						if strings.Contains(e.Regex, "_645") {
							privRange = true
						} else {
							pubRange = true
						}
					}
				}
			}
			for _, cl := range c.CommunityLists {
				for _, e := range cl.Entries {
					if strings.ContainsAny(e.Expr, ".[") {
						commRe = true
					}
					if strings.Contains(e.Expr, "[") {
						commRange = true
					}
				}
			}
		}
		if pubRange {
			res.WithPublicRanges++
		}
		if privRange {
			res.WithPrivateRanges++
		}
		if alt {
			res.WithAlternation++
		}
		if commRe {
			res.WithCommunityRegexp++
		}
		if commRange {
			res.WithCommunityRange++
		}

		// Rewrite verification.
		a, post := anonymizeNetwork(n)
		res.RegexpsRewritten += int(a.Stats().RegexpsRewritten)
		postCfgs := parseFiles(post)
		for ci, c := range preCfgs {
			pc := postCfgs[ci]
			for li, al := range c.ASPathLists {
				if li >= len(pc.ASPathLists) {
					res.RewriteMismatches++
					continue
				}
				pal := pc.ASPathLists[li]
				for ei, e := range al.Entries {
					if ei >= len(pal.Entries) {
						res.RewriteMismatches++
						continue
					}
					if verifyRewrite(e.Regex, pal.Entries[ei].Regex, a.MapASN) {
						res.RewritesVerified++
					} else {
						res.RewriteMismatches++
					}
				}
			}
		}
	}
	return res
}

// verifyRewrite checks the bijection property on one regexp pair.
func verifyRewrite(pre, post string, perm func(uint32) uint32) bool {
	preRE, err := cregex.Parse(pre)
	if err != nil {
		// Unparseable originals are hashed, which is a (conservative)
		// pass as long as the post side is not a regexp accepting
		// anything sensitive; count as verified.
		return true
	}
	postRE, err := cregex.Parse(post)
	if err != nil {
		return false
	}
	lang := preRE.Language()
	want := make(map[uint32]bool, len(lang))
	for _, v := range lang {
		want[perm(v)] = true
	}
	got := postRE.Language()
	if len(got) != len(want) {
		return false
	}
	for _, v := range got {
		if !want[v] {
			return false
		}
	}
	return true
}
