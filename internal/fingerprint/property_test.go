package fingerprint

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"confanon/internal/config"
	"confanon/internal/netgen"
)

// The two properties pinned here are what makes the §6 attacks the
// right privacy measure: the quantities the attacker computes are
// exactly invariant under the renamings a correct structure-preserving
// anonymization performs. If either property broke, a benchmark score
// change could mean "the measurement moved" instead of "privacy moved".

// ppMap builds a prefix-preserving bijection on IPv4 addresses in the
// Crypto-PAn form: output bit i is input bit i XOR f(first i input
// bits), for a keyed pseudorandom f. Every prefix-preserving bijection
// has this form (§4.3), so invariance under ppMap is invariance under
// prefix-preserving renumbering in general.
func ppMap(key uint64) func(uint32) uint32 {
	return func(addr uint32) uint32 {
		var out uint32
		for i := 0; i < 32; i++ {
			prefix := uint64(0)
			if i > 0 {
				prefix = uint64(addr >> (32 - i))
			}
			h := fnv.New64a()
			var buf [17]byte
			buf[0] = byte(i)
			for b := 0; b < 8; b++ {
				buf[1+b] = byte(key >> (8 * b))
				buf[9+b] = byte(prefix >> (8 * b))
			}
			h.Write(buf[:])
			flip := uint32(h.Sum64() & 1)
			bit := (addr >> (31 - i)) & 1
			out = out<<1 | (bit ^ flip)
		}
		return out
	}
}

func corpusConfigs(t *testing.T, seed int64) [][]*config.Config {
	t.Helper()
	c := netgen.GenerateCorpus(netgen.CorpusParams{Seed: seed, Routers: 60, Networks: 3})
	var out [][]*config.Config
	for _, n := range c.Networks {
		var cfgs []*config.Config
		for _, r := range n.Routers {
			cfgs = append(cfgs, config.Parse(r.Config.Render()))
		}
		out = append(out, cfgs)
	}
	return out
}

// mapAddrs rewrites every interface address (primary and secondary)
// through f, in place.
func mapAddrs(cfgs []*config.Config, f func(uint32) uint32) {
	for _, c := range cfgs {
		for _, ifc := range c.Interfaces {
			if ifc.HasAddress {
				ifc.Address.Addr = f(ifc.Address.Addr)
			}
			for i := range ifc.Secondary {
				ifc.Secondary[i].Addr = f(ifc.Secondary[i].Addr)
			}
		}
	}
}

// TestSubnetFingerprintInvariantUnderPrefixPreserving pins the §6.2
// guarantee: prefix-preserving renumbering conserves the subnet-size
// fingerprint exactly, for any key and any generated network.
func TestSubnetFingerprintInvariantUnderPrefixPreserving(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, nets := range corpusConfigs(t, seed) {
			before := SubnetOf(nets).Key()
			mapAddrs(nets, ppMap(uint64(seed)*0x9e3779b97f4a7c15+1))
			after := SubnetOf(nets).Key()
			if before != after {
				t.Fatalf("seed %d: subnet fingerprint changed under prefix-preserving renumbering:\npre:  %s\npost: %s",
					seed, before, after)
			}
			if d := SubnetDistance(SubnetOf(nets), SubnetOf(nets)); d != 0 {
				t.Fatalf("self-distance %v != 0", d)
			}
		}
	}
}

// TestSubnetFingerprintDetectsNonPrefixPreserving is the control: a
// renumbering that is NOT prefix-preserving (independent random
// addresses) splits shared subnets and moves the fingerprint — the
// attack measure is sensitive to exactly the damage the paper's scheme
// avoids.
func TestSubnetFingerprintDetectsNonPrefixPreserving(t *testing.T) {
	nets := corpusConfigs(t, 2)[0]
	before := SubnetOf(nets).Key()
	rng := rand.New(rand.NewSource(99))
	mapAddrs(nets, func(uint32) uint32 { return rng.Uint32() })
	after := SubnetOf(nets).Key()
	if before == after {
		t.Fatal("random renumbering left the subnet fingerprint unchanged — the measure is blind")
	}
}

// mapASNs rewrites every local and neighbor ASN through f, in place.
func mapASNs(cfgs []*config.Config, f func(uint32) uint32) {
	for _, c := range cfgs {
		if c.BGP == nil {
			continue
		}
		c.BGP.ASN = f(c.BGP.ASN)
		for _, nb := range c.BGP.Neighbors {
			nb.RemoteAS = f(nb.RemoteAS)
		}
	}
}

// TestPeeringFingerprintInvariantUnderASNPermutation pins the §6.3
// guarantee: any bijection on AS numbers (the anonymizer's permutation
// included) conserves the peering-structure fingerprint, because the
// eBGP relation "remote AS differs from local AS" is
// permutation-invariant.
func TestPeeringFingerprintInvariantUnderASNPermutation(t *testing.T) {
	// Multiplication by an odd constant is a bijection on uint32; adding
	// a constant shifts private-range ASNs out of range, which must not
	// matter to the fingerprint either.
	perms := []func(uint32) uint32{
		func(a uint32) uint32 { return a*2654435761 + 12345 },
		func(a uint32) uint32 { return a ^ 0xdeadbeef },
		func(a uint32) uint32 { return ^a },
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, nets := range corpusConfigs(t, seed) {
			before := PeeringOf(nets).Key()
			// Applying the bijections in sequence composes them — each
			// step must leave the fingerprint fixed.
			for pi, perm := range perms {
				mapASNs(nets, perm)
				after := PeeringOf(nets).Key()
				if before != after {
					t.Fatalf("seed %d perm %d: peering fingerprint changed under ASN bijection:\npre:  %s\npost: %s",
						seed, pi, before, after)
				}
			}
		}
	}
}

// TestPeeringFingerprintDetectsASNCollapse is the control: a
// non-injective ASN map (everything to one AS) turns eBGP into iBGP and
// empties the fingerprint.
func TestPeeringFingerprintDetectsASNCollapse(t *testing.T) {
	nets := corpusConfigs(t, 3)[0]
	before := PeeringOf(nets)
	if len(before.SessionsPerRouter) == 0 {
		t.Fatal("generated network has no eBGP sessions to measure")
	}
	mapASNs(nets, func(uint32) uint32 { return 65000 })
	after := PeeringOf(nets)
	if len(after.SessionsPerRouter) != 0 {
		t.Fatalf("ASN collapse left eBGP sessions: %v", after.SessionsPerRouter)
	}
	if PeeringDistance(before, after) == 0 {
		t.Fatal("peering distance blind to ASN collapse")
	}
}
