package fingerprint

import (
	"testing"

	"confanon/internal/anonymizer"
	"confanon/internal/config"
	"confanon/internal/netgen"
)

func genConfigs(seed int64, kind netgen.Kind, routers int, compart bool) []*config.Config {
	n := netgen.Generate(netgen.Params{Seed: seed, Kind: kind, Routers: routers, Compartmentalized: compart})
	var out []*config.Config
	for _, text := range n.RenderAll() {
		out = append(out, config.Parse(text))
	}
	return out
}

func TestSubnetFingerprintSurvivesAnonymization(t *testing.T) {
	// The attack premise of §6.2: the subnet-size histogram is identical
	// pre and post anonymization.
	n := netgen.Generate(netgen.Params{Seed: 1, Kind: netgen.Backbone, Routers: 20})
	a := anonymizer.New(anonymizer.Options{Salt: []byte(n.Salt)})
	var pre, post []*config.Config
	for _, text := range n.RenderAll() {
		pre = append(pre, config.Parse(text))
		post = append(post, config.Parse(a.AnonymizeText(text)))
	}
	if SubnetOf(pre).Key() != SubnetOf(post).Key() {
		t.Errorf("subnet fingerprint changed:\npre:  %s\npost: %s",
			SubnetOf(pre).Key(), SubnetOf(post).Key())
	}
	if PeeringOf(pre).Key() != PeeringOf(post).Key() {
		t.Errorf("peering fingerprint changed:\npre:  %s\npost: %s",
			PeeringOf(pre).Key(), PeeringOf(post).Key())
	}
}

func TestSubnetFingerprintNonEmpty(t *testing.T) {
	cfgs := genConfigs(2, netgen.Backbone, 15, false)
	fp := SubnetOf(cfgs)
	if fp[30] == 0 {
		t.Errorf("no /30s in a backbone: %v", fp)
	}
	if fp[32] == 0 {
		t.Errorf("no loopback /32s: %v", fp)
	}
	if fp.Key() == "" {
		t.Error("empty key")
	}
}

func TestPeeringFingerprint(t *testing.T) {
	cfgs := genConfigs(3, netgen.Backbone, 25, false)
	p := PeeringOf(cfgs)
	if len(p.SessionsPerRouter) == 0 {
		t.Fatal("no peering routers found")
	}
	for i := 1; i < len(p.SessionsPerRouter); i++ {
		if p.SessionsPerRouter[i] < p.SessionsPerRouter[i-1] {
			t.Fatal("sessions not sorted")
		}
	}
}

func TestAnalyze(t *testing.T) {
	keys := []string{"a", "a", "b", "c", "c", "c"}
	u := Analyze(keys)
	if u.Networks != 6 || u.Distinct != 3 || u.Unique != 1 {
		t.Errorf("analysis wrong: %+v", u)
	}
	if u.EntropyBits < 1.4 || u.EntropyBits > 1.5 { // H = 1.459
		t.Errorf("entropy = %f", u.EntropyBits)
	}
	if len(u.AnonymitySets) != 3 || u.AnonymitySets[0] != 1 || u.AnonymitySets[2] != 3 {
		t.Errorf("anonymity sets = %v", u.AnonymitySets)
	}
	if u.String() == "" {
		t.Error("empty string rendering")
	}
}

func TestAnalyzeAllUnique(t *testing.T) {
	u := Analyze([]string{"a", "b", "c", "d"})
	if u.Unique != 4 || u.EntropyBits != 2 {
		t.Errorf("all-unique analysis wrong: %+v", u)
	}
}

func TestCompartmentalizedDetection(t *testing.T) {
	with := genConfigs(4, netgen.Enterprise, 20, true)
	without := genConfigs(4, netgen.Enterprise, 20, false)
	if !Compartmentalized(with) {
		t.Error("compartmentalization not detected")
	}
	if Compartmentalized(without) {
		t.Error("false positive on plain network")
	}
}

func TestPopulationUniqueness(t *testing.T) {
	// Over a modest population, subnet fingerprints are expected to be
	// highly unique — the paper's conjectured risk.
	var keys []string
	for seed := int64(0); seed < 20; seed++ {
		cfgs := genConfigs(seed, netgen.Backbone, 10+int(seed), false)
		keys = append(keys, SubnetOf(cfgs).Key())
	}
	u := Analyze(keys)
	if u.Unique < 15 {
		t.Errorf("expected mostly-unique subnet fingerprints, got %+v", u)
	}
}
