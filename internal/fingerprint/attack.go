// Attack scoring: the generalized §6 re-identification experiment. The
// paper's attacker knows the true fingerprints of candidate physical
// networks (measured externally — probing, registry data, traceroute
// maps) and tries to match each anonymized corpus back to its network.
// This file turns that experiment into scores: fingerprint distances, a
// deterministic top-k re-identification accuracy, and the match rate of
// fingerprints across anonymization.
package fingerprint

import "sort"

// SubnetDistance is the L1 distance between two subnet-size
// fingerprints: the total count disagreement across prefix lengths.
// Zero iff the fingerprints are identical.
func SubnetDistance(a, b Subnet) float64 {
	d := 0.0
	for l := 0; l <= 32; l++ {
		diff := a[l] - b[l]
		if diff < 0 {
			diff = -diff
		}
		d += float64(diff)
	}
	return d
}

// PeeringDistance is the L1 distance between two peering-structure
// fingerprints: the session-count vectors are sorted descending, padded
// with zeros to equal length (so a missing peering router costs its
// session count), and compared element-wise. Zero iff identical.
func PeeringDistance(a, b Peering) float64 {
	av := append([]int(nil), a.SessionsPerRouter...)
	bv := append([]int(nil), b.SessionsPerRouter...)
	sort.Sort(sort.Reverse(sort.IntSlice(av)))
	sort.Sort(sort.Reverse(sort.IntSlice(bv)))
	for len(av) < len(bv) {
		av = append(av, 0)
	}
	for len(bv) < len(av) {
		bv = append(bv, 0)
	}
	d := 0.0
	for i := range av {
		diff := av[i] - bv[i]
		if diff < 0 {
			diff = -diff
		}
		d += float64(diff)
	}
	return d
}

// MatchRate is the fraction of networks whose fingerprint key is
// unchanged by anonymization — the paper's premise that
// structure-preserving anonymization conserves exactly what the
// attacker measures. pre and post are aligned by index.
func MatchRate(pre, post []string) float64 {
	if len(pre) == 0 || len(pre) != len(post) {
		return 0
	}
	matched := 0
	for i := range pre {
		if pre[i] == post[i] {
			matched++
		}
	}
	return float64(matched) / float64(len(pre))
}

// TopKCredit is the deterministic re-identification credit for one
// anonymized network: dists[i] is the distance from its anonymized
// fingerprint to candidate original i, trueIdx its real origin. The
// credit is the probability that the true origin lands in the
// attacker's top k under uniform random ordering of distance ties —
// 1 when fewer than k candidates are at least as close, 0 when k
// strictly closer candidates exist, fractional on ties. Using expected
// credit instead of an arbitrary tie order keeps scores deterministic
// across runs and platforms.
func TopKCredit(dists []float64, trueIdx, k int) float64 {
	if k <= 0 || trueIdx < 0 || trueIdx >= len(dists) {
		return 0
	}
	d := dists[trueIdx]
	closer, ties := 0, 1 // ties includes the true candidate itself
	for i, x := range dists {
		if i == trueIdx {
			continue
		}
		if x < d {
			closer++
		} else if x == d {
			ties++
		}
	}
	if closer >= k {
		return 0
	}
	slots := k - closer
	if slots >= ties {
		return 1
	}
	return float64(slots) / float64(ties)
}

// Reident is the population-level re-identification score: the mean
// TopKCredit at k=1 and at the configured K, as fractions in [0,1].
type Reident struct {
	Top1 float64
	TopK float64
	K    int
}

// Reidentify runs the matching experiment over a population: dist(j, i)
// is the distance from anonymized network j to original candidate i,
// over n networks. The true origin of anonymized j is j (the benchmark
// aligns the corpora); the attacker, of course, does not know this —
// the score measures how often distance ranking reveals it.
func Reidentify(dist func(j, i int) float64, n, k int) Reident {
	r := Reident{K: k}
	if n == 0 {
		return r
	}
	row := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			row[i] = dist(j, i)
		}
		r.Top1 += TopKCredit(row, j, 1)
		r.TopK += TopKCredit(row, j, k)
	}
	r.Top1 /= float64(n)
	r.TopK /= float64(n)
	return r
}
