// Package fingerprint implements the attack analyses of §6: because
// structure-preserving anonymization conserves the number of subnets of
// each size and the peering structure, an attacker who can measure those
// properties of candidate physical networks could try to match them
// against anonymized configs. The open question the paper poses — "whether
// address space usage fingerprints are sufficiently unique to enable the
// identification of networks" — is answered empirically here over a
// population of generated networks: compute each network's fingerprints,
// then measure uniqueness, anonymity-set sizes, and entropy.
//
// The package also detects the internal-compartmentalization markers
// (NAT boundaries, probe-dropping filters) that §6.3 reports would defeat
// insider fingerprinting in 10 of the 31 networks.
package fingerprint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"confanon/internal/config"
)

// Subnet is the address-space-usage fingerprint: how many distinct subnets
// of each prefix length the network contains ("an attacker could construct
// a fingerprint of a network via counting up how many subnets of different
// sizes (/30s, /29s, /28s, etc.) appear in the anonymized configs").
type Subnet map[int]int

// SubnetOf computes the subnet-size fingerprint.
func SubnetOf(configs []*config.Config) Subnet {
	subnets := make(map[config.Prefix]bool)
	for _, c := range configs {
		for _, ifc := range c.Interfaces {
			addrs := []config.AddrMask{}
			if ifc.HasAddress {
				addrs = append(addrs, ifc.Address)
			}
			addrs = append(addrs, ifc.Secondary...)
			for _, am := range addrs {
				if l, ok := config.MaskToLen(am.Mask); ok {
					subnets[config.Prefix{Addr: am.Addr & config.LenToMask(l), Len: l}] = true
				}
			}
		}
	}
	fp := make(Subnet)
	for p := range subnets {
		fp[p.Len]++
	}
	return fp
}

// Key canonically serializes the fingerprint for equality grouping.
func (s Subnet) Key() string {
	var parts []string
	for l := 0; l <= 32; l++ {
		if s[l] > 0 {
			parts = append(parts, fmt.Sprintf("/%d:%d", l, s[l]))
		}
	}
	return strings.Join(parts, ",")
}

// Peering is the peering-structure fingerprint: "the number of routers at
// which the anonymized network peers with other networks, and the number
// of peering sessions that terminate on each of those routers".
type Peering struct {
	// SessionsPerRouter holds, sorted, the eBGP session count of every
	// router that has at least one external session.
	SessionsPerRouter []int
}

// PeeringOf computes the peering fingerprint.
func PeeringOf(configs []*config.Config) Peering {
	var counts []int
	for _, c := range configs {
		if c.BGP == nil {
			continue
		}
		n := 0
		for _, nb := range c.BGP.Neighbors {
			if nb.RemoteAS != c.BGP.ASN {
				n++
			}
		}
		if n > 0 {
			counts = append(counts, n)
		}
	}
	sort.Ints(counts)
	return Peering{SessionsPerRouter: counts}
}

// Key canonically serializes the peering fingerprint.
func (p Peering) Key() string {
	parts := make([]string, len(p.SessionsPerRouter))
	for i, n := range p.SessionsPerRouter {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("routers=%d sessions=[%s]", len(p.SessionsPerRouter), strings.Join(parts, ","))
}

// Uniqueness summarizes how identifying a fingerprint is across a
// population.
type Uniqueness struct {
	Networks    int
	Distinct    int     // distinct fingerprint values
	Unique      int     // networks whose fingerprint is unique (anonymity set = 1)
	EntropyBits float64 // Shannon entropy of the fingerprint distribution
	// AnonymitySets holds the sorted sizes of the fingerprint groups;
	// a network in a group of size k hides among k candidates.
	AnonymitySets []int
}

// Analyze groups fingerprint keys and measures their identifying power.
func Analyze(keys []string) Uniqueness {
	groups := make(map[string]int)
	for _, k := range keys {
		groups[k]++
	}
	u := Uniqueness{Networks: len(keys), Distinct: len(groups)}
	n := float64(len(keys))
	for _, size := range groups {
		if size == 1 {
			u.Unique++
		}
		p := float64(size) / n
		u.EntropyBits -= p * math.Log2(p)
		u.AnonymitySets = append(u.AnonymitySets, size)
	}
	sort.Ints(u.AnonymitySets)
	return u
}

// String renders the analysis for reports.
func (u Uniqueness) String() string {
	return fmt.Sprintf("networks=%d distinct=%d unique=%d entropy=%.2f bits sets=%v",
		u.Networks, u.Distinct, u.Unique, u.EntropyBits, u.AnonymitySets)
}

// Compartmentalized reports whether the network carries the internal
// compartmentalization §6.3 describes: NAT dividing the network, or
// filters dropping traceroutes and other probe traffic.
func Compartmentalized(configs []*config.Config) bool {
	for _, c := range configs {
		for _, ifc := range c.Interfaces {
			for _, x := range ifc.Extra {
				if strings.HasPrefix(x, "ip nat inside") || strings.HasPrefix(x, "ip nat outside") {
					return true
				}
			}
		}
		for _, acl := range c.AccessLists {
			for _, e := range acl.Entries {
				if e.Action != "deny" {
					continue
				}
				if e.Proto == "icmp" && strings.Contains(e.Trailing, "echo") {
					return true
				}
				if e.Proto == "udp" && strings.Contains(e.Trailing, "33434") {
					return true // classic traceroute port range
				}
			}
		}
	}
	return false
}
