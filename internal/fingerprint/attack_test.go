package fingerprint

import (
	"math"
	"testing"
)

func TestSubnetDistance(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b Subnet
		want float64
	}{
		{"both empty", Subnet{}, Subnet{}, 0},
		{"identical", Subnet{24: 3, 30: 7}, Subnet{24: 3, 30: 7}, 0},
		{"count moved", Subnet{24: 3}, Subnet{24: 5}, 2},
		{"length moved", Subnet{24: 3}, Subnet{25: 3}, 6},
		{"one empty", Subnet{24: 2, 30: 1}, Subnet{}, 3},
	} {
		if got := SubnetDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: SubnetDistance = %v, want %v", tc.name, got, tc.want)
		}
		if got := SubnetDistance(tc.b, tc.a); got != tc.want {
			t.Errorf("%s: not symmetric: %v", tc.name, got)
		}
	}
}

func TestPeeringDistance(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b []int
		want float64
	}{
		{"both empty", nil, nil, 0},
		{"identical", []int{1, 2, 5}, []int{1, 2, 5}, 0},
		{"order ignored", []int{5, 1, 2}, []int{1, 2, 5}, 0},
		{"session moved", []int{1, 2, 5}, []int{1, 2, 6}, 1},
		{"router missing", []int{1, 2, 5}, []int{2, 5}, 1},
		{"one empty", []int{3, 4}, nil, 7},
	} {
		a := Peering{SessionsPerRouter: tc.a}
		b := Peering{SessionsPerRouter: tc.b}
		if got := PeeringDistance(a, b); got != tc.want {
			t.Errorf("%s: PeeringDistance = %v, want %v", tc.name, got, tc.want)
		}
		if got := PeeringDistance(b, a); got != tc.want {
			t.Errorf("%s: not symmetric: %v", tc.name, got)
		}
	}
}

func TestMatchRate(t *testing.T) {
	if got := MatchRate(nil, nil); got != 0 {
		t.Errorf("empty MatchRate = %v", got)
	}
	if got := MatchRate([]string{"a", "b"}, []string{"a", "c"}); got != 0.5 {
		t.Errorf("MatchRate = %v, want 0.5", got)
	}
	if got := MatchRate([]string{"a"}, []string{"a", "b"}); got != 0 {
		t.Errorf("misaligned MatchRate = %v, want 0", got)
	}
}

func TestTopKCredit(t *testing.T) {
	for _, tc := range []struct {
		name    string
		dists   []float64
		trueIdx int
		k       int
		want    float64
	}{
		{"unique nearest", []float64{0, 5, 9}, 0, 1, 1},
		{"outranked", []float64{3, 0, 1}, 0, 1, 0},
		{"outranked but in top2", []float64{3, 0, 4}, 0, 2, 1},
		{"two-way tie at top1", []float64{2, 2, 9}, 0, 1, 0.5},
		{"two-way tie within top2", []float64{2, 2, 9}, 0, 2, 1},
		{"three-way tie, one slot", []float64{1, 1, 1}, 1, 1, 1.0 / 3},
		{"k beyond population", []float64{5, 0, 1}, 0, 10, 1},
		{"k zero", []float64{0}, 0, 0, 0},
		{"bad index", []float64{0, 1}, 5, 1, 0},
	} {
		if got := TopKCredit(tc.dists, tc.trueIdx, tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: TopKCredit = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestReidentify(t *testing.T) {
	// Three networks with fully distinct fingerprints: perfect top-1.
	d := [][]float64{{0, 7, 8}, {7, 0, 9}, {8, 9, 0}}
	r := Reidentify(func(j, i int) float64 { return d[j][i] }, 3, 2)
	if r.Top1 != 1 || r.TopK != 1 || r.K != 2 {
		t.Errorf("distinct population: %+v", r)
	}
	// All fingerprints identical: top-1 expected credit is 1/n, top-k is
	// k/n — the anonymity-set intuition.
	r = Reidentify(func(j, i int) float64 { return 0 }, 4, 2)
	if math.Abs(r.Top1-0.25) > 1e-12 || math.Abs(r.TopK-0.5) > 1e-12 {
		t.Errorf("uniform population: %+v", r)
	}
	// Empty population.
	r = Reidentify(func(j, i int) float64 { return 0 }, 0, 3)
	if r.Top1 != 0 || r.TopK != 0 {
		t.Errorf("empty population: %+v", r)
	}
}
