package retry

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}.NoJitter()
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky: %w", syscall.EINTR)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	calls := 0
	perm := errors.New("no such file")
	p := Policy{Attempts: 5, BaseDelay: time.Millisecond}.NoJitter()
	if err := p.Do(context.Background(), func() error { calls++; return perm }); !errors.Is(err, perm) {
		t.Fatalf("Do: %v, want %v", err, perm)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 3, BaseDelay: time.Microsecond}.NoJitter()
	err := p.Do(context.Background(), func() error { calls++; return syscall.EBUSY })
	if !errors.Is(err, syscall.EBUSY) {
		t.Fatalf("Do: %v, want EBUSY", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
}

func TestDoHonorsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Attempts: 3, BaseDelay: time.Hour}.NoJitter()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := p.Do(ctx, func() error { calls++; return syscall.EAGAIN })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do: %v, want context.Canceled", err)
	}
	if !errors.Is(err, syscall.EAGAIN) {
		t.Fatalf("joined error lost the op failure: %v", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times before cancellation, want 1", calls)
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}.NoJitter()
	want := []time.Duration{10, 20, 35, 35} // ms; doubling capped at MaxDelay
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := p.Delay(1)
		if d < 100*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms,150ms]", d)
		}
	}
}

func TestOnRetryObservesEachBackoff(t *testing.T) {
	var attempts []int
	p := Policy{
		Attempts:  3,
		BaseDelay: time.Microsecond,
		OnRetry:   func(attempt int, err error) { attempts = append(attempts, attempt) },
	}.NoJitter()
	_ = p.Do(context.Background(), func() error { return syscall.EMFILE })
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("OnRetry saw %v, want [1 2]", attempts)
	}
}

func TestCustomClassifier(t *testing.T) {
	calls := 0
	sentinel := errors.New("try me again")
	p := Policy{
		Attempts:  2,
		BaseDelay: time.Microsecond,
		Classify:  func(err error) bool { return errors.Is(err, sentinel) },
	}.NoJitter()
	_ = p.Do(context.Background(), func() error { calls++; return sentinel })
	if calls != 2 {
		t.Fatalf("custom-classified error ran %d times, want 2", calls)
	}
}

func TestTransientClassification(t *testing.T) {
	for _, e := range []error{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.ENFILE, syscall.EMFILE, syscall.ETIMEDOUT} {
		if !Transient(fmt.Errorf("wrapped: %w", e)) {
			t.Errorf("Transient(%v) = false, want true", e)
		}
	}
	for _, e := range []error{errors.New("parse error"), syscall.ENOSPC, syscall.ENOENT, nil} {
		if Transient(e) {
			t.Errorf("Transient(%v) = true, want false", e)
		}
	}
}

func TestPackageLevelDo(t *testing.T) {
	calls := 0
	if err := Do(func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("Do ran op %d times, want 1", calls)
	}
}
