// Package retry is the repository's one backoff implementation: capped
// exponential backoff with jitter, context-aware, with a pluggable
// transient-error classifier. It began life inline in cmd/confanon
// (transient-I/O retries around file reads and writes) and was extracted
// so the same policy protects every layer that touches the outside
// world: CLI file I/O, the mapping ledger's fsync/remove calls, and the
// job queue's per-file re-attempts.
//
// The default classifier is deliberately narrow. Retrying is only sound
// for failures a short wait can outlive — interrupted syscalls,
// exhausted descriptors, busy devices. Errors that retrying cannot fix
// (missing files, permissions, corrupt data, full disks) surface
// immediately: masking them behind backoff would turn a hard fault into
// a slow one.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"syscall"
	"time"
)

// Policy describes one retry discipline. The zero value is usable: it
// behaves like Default (3 attempts, 50ms base doubling to a 2s cap, half
// a step of jitter, Transient classification).
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (<=0 means 3).
	Attempts int
	// BaseDelay is the wait after the first failure; each further wait
	// doubles it (<=0 means 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (<=0 means 2s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay drawn uniformly at random and
	// added on top, decorrelating retry storms across callers (<0 means
	// 0.5; 0 is honored as no jitter when set explicitly via NoJitter).
	Jitter float64
	// Classify reports whether an error is worth retrying (nil means
	// Transient). A non-retryable error returns immediately.
	Classify func(error) bool
	// OnRetry, when set, observes each scheduled retry: the attempt
	// number just failed (1-based) and its error. Metrics hooks go here.
	OnRetry func(attempt int, err error)
}

// Default is the policy cmd/confanon has always used for transient file
// I/O — and now everything else uses too.
var Default = Policy{}

// noJitter marks a policy whose zero Jitter means "none" rather than
// "default"; see NoJitter.
const noJitter = -1

// NoJitter returns p with jitter disabled (for deterministic tests and
// for callers holding locks where random extra sleep is unwanted).
func (p Policy) NoJitter() Policy {
	p.Jitter = noJitter
	return p
}

func (p Policy) attempts() int {
	if p.Attempts <= 0 {
		return 3
	}
	return p.Attempts
}

func (p Policy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter == noJitter:
		return 0
	case p.Jitter <= 0:
		return 0.5
	default:
		return p.Jitter
	}
}

func (p Policy) classify(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Transient(err)
}

// Delay returns the wait scheduled after the given 1-based failed
// attempt: BaseDelay doubled per prior failure, capped at MaxDelay, plus
// the jitter fraction drawn uniformly. Exposed so callers can compute a
// Retry-After from the same curve clients experience.
func (p Policy) Delay(attempt int) time.Duration {
	d := p.base()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.cap() {
			d = p.cap()
			break
		}
	}
	if j := p.jitter(); j > 0 {
		d += time.Duration(rand.Int63n(int64(float64(d)*j) + 1))
	}
	return d
}

// Do runs op, retrying per the policy while the error classifies as
// retryable and attempts remain. The wait between tries is context-aware:
// a cancelled ctx aborts the backoff immediately and returns ctx's error
// joined with the last op error, so callers see both why the op failed
// and why retrying stopped.
func (p Policy) Do(ctx context.Context, op func() error) error {
	attempts := p.attempts()
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || !p.classify(err) {
			return err
		}
		if attempt >= attempts {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return errors.Join(ctx.Err(), err)
		case <-t.C:
		}
	}
}

// Do runs op under the Default policy with a background context — the
// drop-in form of the old cmd/confanon retryIO helper.
func Do(op func() error) error {
	return Default.Do(context.Background(), op)
}

// Transient reports whether err looks like a failure a short backoff can
// outlive: interrupted or rate-limited syscalls, exhausted descriptor
// tables, busy devices, timeouts. Everything else — including ENOSPC,
// which a 2-second wait does not fix — is permanent.
func Transient(err error) bool {
	for _, e := range []error{
		syscall.EINTR, syscall.EAGAIN, syscall.EBUSY,
		syscall.ENFILE, syscall.EMFILE, syscall.ETIMEDOUT,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}
