package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-2) // rollback path
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("x_total", "")
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("files_total", "files by status", "status")
	v.With("ok").Add(3)
	v.With("failed").Inc()
	if v.With("ok").Value() != 3 || v.With("failed").Value() != 1 {
		t.Fatal("labeled counters diverged")
	}
	// Ambiguous concatenations must stay distinct.
	v2 := r.CounterVec("pair_total", "", "a", "b")
	v2.With("x", "yz").Inc()
	if v2.With("xy", "z").Value() != 0 {
		t.Fatal(`("x","yz") collided with ("xy","z")`)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", 0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.5 + 5 + 50 + 0.05; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("size", "sampled", func() float64 { return n })
	n = 42
	if got := r.Counters()["size"]; got != 42 {
		t.Fatalf("GaugeFunc sampled %v, want 42", got)
	}
}

func TestSnapshotRoundTripsThroughText(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "help with \"quotes\"").Add(7)
	r.CounterVec("lv_total", "", "kind", "file").With("leak", `a"b\c`).Add(2)
	r.Histogram("dur_seconds", "", 0.5, 2).Observe(1)
	r.Gauge("g", "").Set(-4)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(b.String())
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, b.String())
	}
	want := r.Counters()
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d series, want %d", len(parsed), len(want))
	}
	for id, v := range want {
		got, ok := parsed[id]
		if !ok {
			t.Errorf("scrape missing series %s", id)
			continue
		}
		if math.Abs(got-v) > 1e-9 {
			t.Errorf("series %s: scrape %v, report %v", id, got, v)
		}
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("h_seconds", "")
			v := r.CounterVec("vec_total", "", "w")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				v.With("a").Inc()
				v.With("b").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	vec := r.CounterVec("vec_total", "", "w")
	if vec.With("a").Value() != 8000 || vec.With("b").Value() != 8000 {
		t.Fatal("labeled counters lost increments")
	}
}

func TestSampleID(t *testing.T) {
	s := Sample{Name: "m", Labels: map[string]string{"b": "2", "a": "1"}}
	if got := s.ID(); got != `m{a="1",b="2"}` {
		t.Fatalf("ID = %q", got)
	}
	if got := (Sample{Name: "m"}).ID(); got != "m" {
		t.Fatalf("unlabeled ID = %q", got)
	}
}

func TestCounterExemplar(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "code")
	c := v.With("200")
	c.Inc()

	// No exemplar yet: the series renders without a comment.
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# exemplar") {
		t.Fatalf("exemplar comment before any was set:\n%s", buf.String())
	}

	c.SetExemplar(`request_id="abc123"`)
	if got := c.Exemplar(); got != `request_id="abc123"` {
		t.Fatalf("Exemplar() = %q", got)
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# exemplar req_total{code="200"} request_id="abc123"`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition lacks %q:\n%s", want, buf.String())
	}

	// The exemplar is a comment: parsing, snapshots, and values are
	// unaffected by it.
	parsed, err := ParseText(buf.String())
	if err != nil {
		t.Fatalf("exposition with exemplar no longer parses: %v", err)
	}
	if parsed[`req_total{code="200"}`] != 1 {
		t.Fatalf("parsed value = %v, want 1", parsed[`req_total{code="200"}`])
	}

	// Clearing removes the comment again.
	c.SetExemplar("")
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# exemplar") {
		t.Fatalf("exemplar comment survived clearing:\n%s", buf.String())
	}
}
