// Package metrics is a dependency-free instrument registry for the
// anonymization pipeline: atomic counters, gauges, and fixed-bucket
// histograms, grouped into named families with optional label
// dimensions, exposable as Prometheus text (expose.go) and as a flat
// JSON-able snapshot for run reports.
//
// Design constraints, in order:
//
//   - Hot-path cost. Counter.Add is one atomic add; Histogram.Observe is
//     a branch-free bucket walk plus two atomic adds and a CAS loop for
//     the float sum. The engine flushes counter deltas at file
//     granularity, so even those costs are off the per-line path.
//   - Concurrency. Every instrument is safe for concurrent use; a single
//     Registry can be shared by all workers of a parallel corpus run and
//     the counts merge by construction, with no gather step.
//   - Idempotent registration. Asking a Registry for an instrument that
//     already exists (same name, same type, same label keys) returns the
//     existing one, so independent workers and layers can wire the same
//     metric without coordinating. A name re-registered with a different
//     type or label arity panics: that is a programming error, and
//     silently forking a metric would corrupt the exposition.
//
// Metric naming follows the Prometheus conventions documented in
// DESIGN.md §3d: snake_case, a unit suffix (_total for counters,
// _seconds/_ns where dimensioned), label keys for dimensions with small
// closed vocabularies.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic-by-convention cumulative count. Add accepts
// negative deltas because the anonymizer's fail-closed batch layer rolls
// a failed file's partial counts back out of the totals; between file
// boundaries the value is monotonic.
type Counter struct {
	v atomic.Int64
	// exemplar holds the last SetExemplar annotation (a string, e.g.
	// `request_id="ab12"`), exposed as a comment line alongside the
	// series — exemplar-style context without departing from the 0.0.4
	// text format this package's ParseText round-trips.
	exemplar atomic.Pointer[string]
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n rolls back a failed file's partial counts).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// SetExemplar attaches (or, with "", clears) a free-form annotation tying
// the series to one recent contributing event — typically a request or
// trace id. The exposition renders it as a `# exemplar` comment line, so
// every 0.0.4 consumer (and ParseText) skips it; it never affects the
// value or the series identity.
func (c *Counter) SetExemplar(note string) {
	if note == "" {
		c.exemplar.Store(nil)
		return
	}
	c.exemplar.Store(&note)
}

// Exemplar returns the current annotation ("" when unset).
func (c *Counter) Exemplar() string {
	if p := c.exemplar.Load(); p != nil {
		return *p
	}
	return ""
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bounds (seconds): exponential
// from 100µs to 10s, sized for per-file pipeline stages.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed cumulative buckets and tracks
// their sum and count. All methods are safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, merged by CAS
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			goto counted
		}
	}
	h.counts[len(h.bounds)].Add(1)
counted:
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// instrument type tags for registration conflict checks.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance within a family: exactly one of the
// instrument pointers is set, matching the family type.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	fn        func() float64 // sampled gauge
}

// family is all series sharing one metric name.
type family struct {
	name      string
	help      string
	typ       string
	labelKeys []string
	buckets   []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series // keyed by joined label values
}

func (f *family) get(vals []string) (*series, bool) {
	f.mu.RLock()
	s, ok := f.series[joinVals(vals)]
	f.mu.RUnlock()
	return s, ok
}

func (f *family) getOrCreate(vals []string, mk func() *series) *series {
	if s, ok := f.get(vals); ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := joinVals(vals)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labelVals = append([]string(nil), vals...)
	f.series[key] = s
	return s
}

// joinVals builds the series key; 0x1f cannot appear in sane label
// values and keeps "a","bc" distinct from "ab","c".
func joinVals(vals []string) string {
	switch len(vals) {
	case 0:
		return ""
	case 1:
		return vals[0]
	}
	n := 0
	for _, v := range vals {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range vals {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// Registry holds a namespace of instrument families.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// familyFor finds or creates the named family, enforcing that repeated
// registration agrees on type and label arity.
func (r *Registry) familyFor(name, help, typ string, labelKeys []string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.fams[name]; !ok {
			f = &family{
				name: name, help: help, typ: typ,
				labelKeys: append([]string(nil), labelKeys...),
				buckets:   append([]float64(nil), buckets...),
				series:    make(map[string]*series),
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("metrics: %s re-registered as %s/%d labels (was %s/%d)",
			name, typ, len(labelKeys), f.typ, len(f.labelKeys)))
	}
	for i, k := range labelKeys {
		if f.labelKeys[i] != k {
			panic(fmt.Sprintf("metrics: %s re-registered with label %q (was %q)", name, k, f.labelKeys[i]))
		}
	}
	return f
}

// Counter returns the unlabeled counter name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, typeCounter, nil, nil)
	return f.getOrCreate(nil, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns the unlabeled gauge name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, typeGauge, nil, nil)
	return f.getOrCreate(nil, func() *series { return &series{g: &Gauge{}} }).g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time (for sizes held elsewhere, e.g. the IP-mapping table).
// Re-registering the same name replaces the sampling function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, typeGauge, nil, nil)
	s := f.getOrCreate(nil, func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram name with the given bucket
// upper bounds (DefBuckets when bounds is empty), creating it on first
// use.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	f := r.familyFor(name, help, typeHistogram, nil, bounds)
	return f.getOrCreate(nil, func() *series { return &series{h: newHistogram(f.buckets)} }).h
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.familyFor(name, help, typeCounter, labelKeys, nil)}
}

// With returns the counter for one combination of label values (arity
// must match the registered keys).
func (v *CounterVec) With(labelVals ...string) *Counter {
	v.f.checkArity(labelVals)
	return v.f.getOrCreate(labelVals, func() *series { return &series{c: &Counter{}} }).c
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{r.familyFor(name, help, typeGauge, labelKeys, nil)}
}

// With returns the gauge for one combination of label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	v.f.checkArity(labelVals)
	return v.f.getOrCreate(labelVals, func() *series { return &series{g: &Gauge{}} }).g
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family name with the given
// bounds (DefBuckets when nil).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{r.familyFor(name, help, typeHistogram, labelKeys, bounds)}
}

// With returns the histogram for one combination of label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	v.f.checkArity(labelVals)
	return v.f.getOrCreate(labelVals, func() *series { return &series{h: newHistogram(v.f.buckets)} }).h
}

func (f *family) checkArity(vals []string) {
	if len(vals) != len(f.labelKeys) {
		panic(fmt.Sprintf("metrics: %s given %d label values, want %d", f.name, len(vals), len(f.labelKeys)))
	}
}

// sortedFamilies returns the families in name order for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns a family's series in label-value order.
func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return joinVals(out[i].labelVals) < joinVals(out[j].labelVals)
	})
	return out
}
