package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed series value, flattened for run reports.
// Histograms expand into their _sum/_count/_bucket derivatives before
// sampling, so Value is always a plain number.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// ID returns the series identity in Prometheus notation,
// name{k1="v1",k2="v2"} with label keys sorted, or the bare name when
// unlabeled. Two samples agree across exposition paths iff their IDs and
// values agree; the run-report/portal equality test keys on this.
func (s Sample) ID() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.Labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot returns every series (histograms expanded) sorted by ID.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		keys := f.labelKeys
		for _, s := range f.sortedSeries() {
			labels := func(extra ...string) map[string]string {
				if len(keys) == 0 && len(extra) == 0 {
					return nil
				}
				m := make(map[string]string, len(keys)+len(extra)/2)
				for i, k := range keys {
					m[k] = s.labelVals[i]
				}
				for i := 0; i+1 < len(extra); i += 2 {
					m[extra[i]] = extra[i+1]
				}
				return m
			}
			switch {
			case s.c != nil:
				out = append(out, Sample{f.name, labels(), float64(s.c.Value())})
			case s.g != nil:
				out = append(out, Sample{f.name, labels(), float64(s.g.Value())})
			case s.fn != nil:
				out = append(out, Sample{f.name, labels(), s.fn()})
			case s.h != nil:
				cum := int64(0)
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					out = append(out, Sample{f.name + "_bucket", labels("le", formatFloat(b)), float64(cum)})
				}
				out = append(out, Sample{f.name + "_bucket", labels("le", "+Inf"), float64(s.h.Count())})
				out = append(out, Sample{f.name + "_sum", labels(), s.h.Sum()})
				out = append(out, Sample{f.name + "_count", labels(), float64(s.h.Count())})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Counters flattens the snapshot into an ID → value map, the form the
// RunReport embeds and the integration tests compare against a portal
// scrape.
func (r *Registry) Counters() map[string]float64 {
	snap := r.Snapshot()
	m := make(map[string]float64, len(snap))
	for _, s := range snap {
		m[s.ID()] = s.Value
	}
	return m
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	lbl := func(extra ...string) string { return renderLabels(f.labelKeys, s.labelVals, extra) }
	switch {
	case s.c != nil:
		if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lbl(), s.c.Value()); err != nil {
			return err
		}
		if ex := s.c.Exemplar(); ex != "" {
			// A comment line: Prometheus 0.0.4 consumers and ParseText
			// skip it, scrape-debugging humans get the context.
			if _, err := fmt.Fprintf(w, "# exemplar %s%s %s\n", f.name, lbl(), escapeHelp(ex)); err != nil {
				return err
			}
		}
		return nil
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lbl(), s.g.Value())
		return err
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lbl(), formatFloat(s.fn()))
		return err
	case s.h != nil:
		cum := int64(0)
		for i, b := range s.h.bounds {
			cum += s.h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl("le", formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, lbl("le", "+Inf"), s.h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, lbl(), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, lbl(), s.h.Count())
		return err
	}
	return nil
}

// renderLabels formats {k1="v1",...} from parallel key/value slices plus
// inline extra pairs; empty when there are no labels at all.
func renderLabels(keys, vals, extra []string) string {
	if len(keys) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	put := func(k, v string) {
		if n > 0 {
			b.WriteByte(',')
		}
		n++
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i, k := range keys {
		put(k, vals[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		put(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Handler returns an http.Handler serving the text exposition, for
// mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ParseText parses a Prometheus text exposition (as produced by
// WritePrometheus) back into an ID → value map. It exists for the
// integration test that scrapes the portal and compares against a
// RunReport; it handles only the subset this package emits.
func ParseText(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("metrics: unparsable line %q", line)
		}
		id, valStr := line[:sp], line[sp+1:]
		var v float64
		if valStr == "+Inf" {
			v = math.Inf(1)
		} else {
			var err error
			v, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: bad value in %q: %v", line, err)
			}
		}
		out[canonicalID(id)] = v
	}
	return out, nil
}

// canonicalID re-sorts the label list inside a series ID so scrape-side
// and report-side identities compare equal regardless of emission order.
func canonicalID(id string) string {
	open := strings.IndexByte(id, '{')
	if open < 0 || !strings.HasSuffix(id, "}") {
		return id
	}
	body := id[open+1 : len(id)-1]
	parts := splitLabels(body)
	sort.Strings(parts)
	return id[:open] + "{" + strings.Join(parts, ",") + "}"
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(body string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	return parts
}
