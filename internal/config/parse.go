package config

import (
	"strconv"
	"strings"

	"confanon/internal/token"
)

// Parse recovers a Config from IOS-style text. Unknown lines are retained
// (top-level in Extra, block-level in the block's Extra) so that parsing
// never loses information. Parse never fails on well-formed lines it does
// not understand; it is the measurement substrate, not a validator.
func Parse(text string) *Config {
	c := &Config{}
	lines := strings.Split(text, "\n")
	i := 0
	next := func() (string, bool) {
		if i >= len(lines) {
			return "", false
		}
		l := lines[i]
		i++
		return strings.TrimRight(l, "\r"), true
	}
	peek := func() (string, bool) {
		if i >= len(lines) {
			return "", false
		}
		return strings.TrimRight(lines[i], "\r"), true
	}
	// block collects the indented continuation lines of a section.
	block := func() []string {
		var out []string
		for {
			l, ok := peek()
			if !ok {
				break
			}
			if strings.HasPrefix(l, " ") || strings.HasPrefix(l, "\t") {
				out = append(out, strings.TrimSpace(l))
				i++
				continue
			}
			break
		}
		return out
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		f := strings.Fields(trimmed)
		switch f[0] {
		case "!":
			if len(f) > 1 {
				c.Comments = append(c.Comments, strings.TrimSpace(trimmed[1:]))
			}
		case "version":
			if len(f) > 1 {
				c.Dialect.Version = f[1]
			}
		case "service":
			if len(f) > 2 && f[1] == "timestamps" {
				c.Dialect.ServiceTimestamps = true
			} else {
				c.Extra = append(c.Extra, trimmed)
			}
		case "hostname":
			if len(f) > 1 {
				c.Hostname = f[1]
			}
		case "username":
			c.Users = append(c.Users, strings.TrimSpace(strings.TrimPrefix(trimmed, "username")))
		case "banner":
			c.parseBanner(f, next)
		case "interface":
			c.parseInterface(f, block())
		case "router":
			c.parseRouter(f, block())
		case "route-map":
			c.parseRouteMap(f, block())
		case "access-list":
			c.parseAccessList(f)
		case "snmp-server":
			if len(f) >= 3 && f[1] == "community" {
				c.SNMPCommunities = append(c.SNMPCommunities, strings.Join(f[2:], " "))
			} else {
				c.Extra = append(c.Extra, trimmed)
			}
		case "dialer":
			if len(f) >= 3 && f[1] == "string" {
				c.DialerStrings = append(c.DialerStrings, strings.Join(f[2:], " "))
			} else {
				c.Extra = append(c.Extra, trimmed)
			}
		case "ip":
			c.parseIPLine(f, trimmed)
		case "end":
			// done
		default:
			c.Extra = append(c.Extra, trimmed)
		}
	}
	return c
}

func (c *Config) parseBanner(f []string, next func() (string, bool)) {
	b := Banner{Kind: "motd", Delim: '^'}
	if len(f) > 1 {
		b.Kind = f[1]
	}
	if len(f) > 2 && len(f[2]) > 0 {
		b.Delim = f[2][0]
	}
	for {
		l, ok := next()
		if !ok {
			break
		}
		if strings.ContainsRune(l, rune(b.Delim)) {
			break
		}
		b.Lines = append(b.Lines, l)
	}
	c.Banners = append(c.Banners, b)
}

func (c *Config) parseInterface(f []string, body []string) {
	ifc := &Interface{}
	if len(f) > 1 {
		ifc.Name = f[1]
	}
	if len(f) > 2 && f[2] == "point-to-point" {
		ifc.PointTo = true
	}
	for _, l := range body {
		w := strings.Fields(l)
		if len(w) == 0 {
			continue
		}
		switch {
		case w[0] == "description":
			ifc.Description = strings.TrimSpace(strings.TrimPrefix(l, "description"))
		case w[0] == "bandwidth" && len(w) > 1:
			ifc.Bandwidth, _ = strconv.Atoi(w[1])
		case w[0] == "encapsulation" && len(w) > 1:
			ifc.Encap = strings.Join(w[1:], " ")
		case w[0] == "shutdown":
			ifc.Shutdown = true
		case w[0] == "no" && len(w) >= 3 && w[1] == "ip" && w[2] == "address":
			ifc.HasAddress = false
		case w[0] == "ip" && len(w) >= 4 && w[1] == "address":
			addr, ok1 := token.ParseIPv4(w[2])
			mask, ok2 := token.ParseIPv4(w[3])
			if ok1 && ok2 {
				if len(w) > 4 && w[4] == "secondary" {
					ifc.Secondary = append(ifc.Secondary, AddrMask{addr, mask})
				} else {
					ifc.Address = AddrMask{addr, mask}
					ifc.HasAddress = true
				}
			} else {
				ifc.Extra = append(ifc.Extra, l)
			}
		default:
			ifc.Extra = append(ifc.Extra, l)
		}
	}
	c.Interfaces = append(c.Interfaces, ifc)
}

func (c *Config) parseRouter(f []string, body []string) {
	if len(f) < 2 {
		c.Extra = append(c.Extra, strings.Join(f, " "))
		return
	}
	switch f[1] {
	case "bgp":
		g := &BGP{}
		if len(f) > 2 {
			g.ASN = parseU32(f[2])
		}
		for _, l := range body {
			c.parseBGPLine(g, l)
		}
		c.BGP = g
	case "ospf":
		o := &OSPF{}
		if len(f) > 2 {
			o.PID, _ = strconv.Atoi(f[2])
		}
		for _, l := range body {
			c.parseOSPFLine(o, l)
		}
		c.OSPF = append(c.OSPF, o)
	case "rip":
		r := &RIP{}
		for _, l := range body {
			w := strings.Fields(l)
			switch {
			case len(w) >= 2 && w[0] == "version":
				r.Version, _ = strconv.Atoi(w[1])
			case len(w) >= 2 && w[0] == "network":
				if a, ok := token.ParseIPv4(w[1]); ok {
					r.Networks = append(r.Networks, a)
				} else {
					r.Extra = append(r.Extra, l)
				}
			case len(w) >= 2 && w[0] == "redistribute":
				r.Redistribute = append(r.Redistribute, strings.Join(w[1:], " "))
			default:
				r.Extra = append(r.Extra, l)
			}
		}
		c.RIP = r
	case "eigrp":
		e := &EIGRP{}
		if len(f) > 2 {
			e.ASN = parseU32(f[2])
		}
		for _, l := range body {
			w := strings.Fields(l)
			switch {
			case len(w) >= 2 && w[0] == "network":
				if a, ok := token.ParseIPv4(w[1]); ok {
					e.Networks = append(e.Networks, a)
				} else {
					e.Extra = append(e.Extra, l)
				}
			case len(w) >= 2 && w[0] == "redistribute":
				e.Redistribute = append(e.Redistribute, strings.Join(w[1:], " "))
			default:
				e.Extra = append(e.Extra, l)
			}
		}
		c.EIGRP = append(c.EIGRP, e)
	default:
		c.Extra = append(c.Extra, "router "+strings.Join(f[1:], " "))
	}
}

func (c *Config) parseBGPLine(g *BGP, l string) {
	w := strings.Fields(l)
	if len(w) == 0 {
		return
	}
	switch {
	case w[0] == "bgp" && len(w) >= 3 && w[1] == "router-id":
		if a, ok := token.ParseIPv4(w[2]); ok {
			g.RouterID, g.HasRouterID = a, true
			return
		}
	case w[0] == "bgp" && len(w) >= 4 && w[1] == "confederation" && w[2] == "identifier":
		g.ConfedID = parseU32(w[3])
		return
	case w[0] == "bgp" && len(w) >= 4 && w[1] == "confederation" && w[2] == "peers":
		for _, p := range w[3:] {
			g.ConfedPeers = append(g.ConfedPeers, parseU32(p))
		}
		return
	case w[0] == "no" && len(w) == 2 && w[1] == "synchronization":
		g.NoSynchronize = true
		return
	case w[0] == "no" && len(w) == 2 && w[1] == "auto-summary":
		g.NoAutoSummary = true
		return
	case w[0] == "redistribute" && len(w) >= 2:
		g.Redistribute = append(g.Redistribute, strings.Join(w[1:], " "))
		return
	case w[0] == "network" && len(w) >= 4 && w[2] == "mask":
		a, ok1 := token.ParseIPv4(w[1])
		m, ok2 := token.ParseIPv4(w[3])
		if ok1 && ok2 {
			g.Networks = append(g.Networks, AddrMask{a, m})
			return
		}
	case w[0] == "network" && len(w) == 2:
		if a, ok := token.ParseIPv4(w[1]); ok {
			g.Networks = append(g.Networks, AddrMask{a, ClassfulMask(a)})
			return
		}
	case w[0] == "neighbor" && len(w) >= 3:
		addr, ok := token.ParseIPv4(w[1])
		if !ok {
			break
		}
		nb := g.neighbor(addr)
		switch w[2] {
		case "remote-as":
			if len(w) >= 4 {
				nb.RemoteAS = parseU32(w[3])
				return
			}
		case "description":
			nb.Description = strings.Join(w[3:], " ")
			return
		case "update-source":
			if len(w) >= 4 {
				nb.UpdateSource = w[3]
				return
			}
		case "next-hop-self":
			nb.NextHopSelf = true
			return
		case "route-reflector-client":
			nb.RRClient = true
			return
		case "send-community":
			nb.SendComm = true
			return
		case "route-map":
			if len(w) >= 5 {
				if w[4] == "in" {
					nb.RouteMapIn = w[3]
				} else {
					nb.RouteMapOut = w[3]
				}
				return
			}
		}
	}
	g.Extra = append(g.Extra, l)
}

// neighbor returns the neighbor record for addr, creating it on first use
// so multi-line neighbor configuration accumulates onto one record.
func (g *BGP) neighbor(addr uint32) *BGPNeighbor {
	for _, nb := range g.Neighbors {
		if nb.Addr == addr {
			return nb
		}
	}
	nb := &BGPNeighbor{Addr: addr}
	g.Neighbors = append(g.Neighbors, nb)
	return nb
}

func (c *Config) parseOSPFLine(o *OSPF, l string) {
	w := strings.Fields(l)
	if len(w) == 0 {
		return
	}
	switch {
	case w[0] == "router-id" && len(w) >= 2:
		if a, ok := token.ParseIPv4(w[1]); ok {
			o.RouterID, o.HasRouterID = a, true
			return
		}
	case w[0] == "passive-interface" && len(w) >= 2:
		o.Passive = append(o.Passive, w[1])
		return
	case w[0] == "redistribute" && len(w) >= 2:
		o.Redistribute = append(o.Redistribute, strings.Join(w[1:], " "))
		return
	case w[0] == "network" && len(w) >= 5 && w[3] == "area":
		a, ok1 := token.ParseIPv4(w[1])
		wc, ok2 := token.ParseIPv4(w[2])
		if ok1 && ok2 {
			o.Networks = append(o.Networks, OSPFNetwork{a, wc, parseU32(w[4])})
			return
		}
	}
	o.Extra = append(o.Extra, l)
}

func (c *Config) parseRouteMap(f []string, body []string) {
	if len(f) < 2 {
		return
	}
	name := f[1]
	cl := &RouteMapClause{Action: "permit", Seq: 10}
	if len(f) > 2 {
		cl.Action = f[2]
	}
	if len(f) > 3 {
		cl.Seq, _ = strconv.Atoi(f[3])
	}
	for _, l := range body {
		w := strings.Fields(l)
		if len(w) < 2 {
			continue
		}
		switch w[0] {
		case "match":
			cl.Matches = append(cl.Matches, parseClause(w[1:]))
		case "set":
			cl.Sets = append(cl.Sets, parseClause(w[1:]))
		}
	}
	rm := c.RouteMap(name)
	if rm == nil {
		rm = &RouteMap{Name: name}
		c.RouteMaps = append(c.RouteMaps, rm)
	}
	rm.Clauses = append(rm.Clauses, cl)
}

// parseClause splits a match/set body into its multi-word type and args.
// Types with two-word names ("ip address", "as-path prepend", "ip
// next-hop", "comm-list") are recognized so arguments are not mistaken for
// type words.
func parseClause(w []string) Clause {
	twoWord := map[string]bool{
		"ip address": true, "ip next-hop": true, "as-path prepend": true,
	}
	if len(w) >= 2 && twoWord[w[0]+" "+w[1]] {
		return Clause{Type: w[0] + " " + w[1], Args: w[2:]}
	}
	return Clause{Type: w[0], Args: w[1:]}
}

func (c *Config) parseAccessList(f []string) {
	// access-list N permit|deny [proto] src [wild] [dst [wild]] [trailing]
	if len(f) < 3 {
		c.Extra = append(c.Extra, strings.Join(f, " "))
		return
	}
	num, err := strconv.Atoi(f[1])
	if err != nil {
		c.Extra = append(c.Extra, strings.Join(f, " "))
		return
	}
	e := ACLEntry{Action: f[2]}
	rest := f[3:]
	extended := num >= 100 && num <= 199
	if extended && len(rest) > 0 {
		e.Proto = rest[0]
		rest = rest[1:]
	}
	var ok bool
	rest, e.Src, e.SrcWild, e.SrcAny, e.SrcHost, ok = parseACLAddr(rest, !extended)
	if !ok {
		c.Extra = append(c.Extra, strings.Join(f, " "))
		return
	}
	if extended {
		var dok bool
		rest, e.Dst, e.DstWild, e.DstAny, e.DstHost, dok = parseACLAddr(rest, false)
		if dok {
			e.HasDst = true
		}
	}
	e.Trailing = strings.Join(rest, " ")
	acl := c.AccessList(num)
	if acl == nil {
		acl = &AccessList{Number: num}
		c.AccessLists = append(c.AccessLists, acl)
	}
	acl.Entries = append(acl.Entries, e)
}

// parseACLAddr consumes one address spec: "any", "host A", or "A W" ("A"
// alone for standard lists when no wildcard follows).
func parseACLAddr(w []string, wildOptional bool) (rest []string, addr, wild uint32, any, host, ok bool) {
	if len(w) == 0 {
		return w, 0, 0, false, false, false
	}
	switch w[0] {
	case "any":
		return w[1:], 0, 0, true, false, true
	case "host":
		if len(w) < 2 {
			return w, 0, 0, false, false, false
		}
		a, aok := token.ParseIPv4(w[1])
		if !aok {
			return w, 0, 0, false, false, false
		}
		return w[2:], a, 0, false, true, true
	}
	a, aok := token.ParseIPv4(w[0])
	if !aok {
		return w, 0, 0, false, false, false
	}
	if len(w) >= 2 {
		if m, mok := token.ParseIPv4(w[1]); mok {
			return w[2:], a, m, false, false, true
		}
	}
	if wildOptional {
		return w[1:], a, 0, false, false, true
	}
	return w, 0, 0, false, false, false
}

func (c *Config) parseIPLine(f []string, trimmed string) {
	switch {
	case len(f) >= 2 && f[1] == "classless":
		c.Dialect.IPClassless = true
	case len(f) >= 3 && f[1] == "domain-name":
		c.Domain = f[2]
	case len(f) >= 3 && f[1] == "name-server":
		for _, s := range f[2:] {
			if a, ok := token.ParseIPv4(s); ok {
				c.NameServers = append(c.NameServers, a)
			}
		}
	case len(f) >= 5 && f[1] == "community-list":
		num, err := strconv.Atoi(f[2])
		if err != nil {
			c.Extra = append(c.Extra, trimmed)
			return
		}
		cl := c.CommunityList(num)
		if cl == nil {
			cl = &CommunityList{Number: num}
			c.CommunityLists = append(c.CommunityLists, cl)
		}
		cl.Entries = append(cl.Entries, CommunityEntry{Action: f[3], Expr: strings.Join(f[4:], " ")})
	case len(f) >= 6 && f[1] == "as-path" && f[2] == "access-list":
		num, err := strconv.Atoi(f[3])
		if err != nil {
			c.Extra = append(c.Extra, trimmed)
			return
		}
		al := c.ASPathList(num)
		if al == nil {
			al = &ASPathList{Number: num}
			c.ASPathLists = append(c.ASPathLists, al)
		}
		al.Entries = append(al.Entries, ASPathEntry{Action: f[4], Regex: strings.Join(f[5:], " ")})
	case len(f) >= 5 && f[1] == "route":
		dest, ok1 := token.ParseIPv4(f[2])
		mask, ok2 := token.ParseIPv4(f[3])
		if !ok1 || !ok2 {
			c.Extra = append(c.Extra, trimmed)
			return
		}
		sr := &StaticRoute{Dest: dest, Mask: mask}
		if nh, ok := token.ParseIPv4(f[4]); ok {
			sr.NextHop = nh
		} else {
			sr.NextHopIface = f[4]
		}
		c.StaticRoutes = append(c.StaticRoutes, sr)
	default:
		c.Extra = append(c.Extra, trimmed)
	}
}

func parseU32(s string) uint32 {
	v, _ := strconv.ParseUint(s, 10, 32)
	return uint32(v)
}
