package config

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomText throws arbitrary text at the parser;
// it must never panic and must retain something for every non-empty line.
func TestParseNeverPanicsOnRandomText(t *testing.T) {
	f := func(text string) bool {
		c := Parse(text) // must not panic
		return c != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMangledConfigs mutates realistic config text:
// truncations, duplicated lines, swapped words, garbage bytes.
func TestParseNeverPanicsOnMangledConfigs(t *testing.T) {
	base := `hostname r1
interface Ethernet0
 ip address 10.1.1.1 255.255.255.0
router bgp 65000
 neighbor 10.0.0.1 remote-as 701
 bgp confederation peers 65001 65002
route-map m permit 10
 match ip address 1
 set community 701:100
access-list 101 permit tcp host 10.1.1.1 any eq 80
ip community-list 1 permit 701:1[0-9]
ip as-path access-list 1 permit (_701_|_1239_)
ip route 0.0.0.0 0.0.0.0 Null0
ip prefix-list pl seq 5 permit 10.0.0.0/8 le 24
banner motd #
text
#
line vty 0 4
end
`
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		b := []byte(base)
		switch i % 5 {
		case 0: // truncate
			b = b[:rng.Intn(len(b))]
		case 1: // flip bytes
			for j := 0; j < 5; j++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
		case 2: // delete a line
			lines := strings.Split(string(b), "\n")
			k := rng.Intn(len(lines))
			lines = append(lines[:k], lines[k+1:]...)
			b = []byte(strings.Join(lines, "\n"))
		case 3: // duplicate a line
			lines := strings.Split(string(b), "\n")
			k := rng.Intn(len(lines))
			lines = append(lines[:k], append([]string{lines[k]}, lines[k:]...)...)
			b = []byte(strings.Join(lines, "\n"))
		case 4: // shuffle words on a line
			lines := strings.Split(string(b), "\n")
			k := rng.Intn(len(lines))
			words := strings.Fields(lines[k])
			rng.Shuffle(len(words), func(x, y int) { words[x], words[y] = words[y], words[x] })
			lines[k] = strings.Join(words, " ")
			b = []byte(strings.Join(lines, "\n"))
		}
		c := Parse(string(b)) // must not panic
		_ = c.Render()        // nor the renderer
	}
}

// TestParseRenderStabilizes: rendering then parsing then rendering again
// is a fixed point for arbitrary mangled inputs once normalized.
func TestParseRenderStabilizes(t *testing.T) {
	inputs := []string{
		"hostname h\nrouter bgp 1\n neighbor 1.2.3.4 remote-as 2\n",
		"interface X\n unknown subcommand here\n!\n",
		"access-list 10 permit any\n",
		"ip community-list 9 deny internet\n",
		"",
		"!\n!\n!\n",
	}
	for _, in := range inputs {
		r1 := Parse(in).Render()
		r2 := Parse(r1).Render()
		if r1 != r2 {
			t.Errorf("render not stable for %q:\n1: %q\n2: %q", in, r1, r2)
		}
	}
}
