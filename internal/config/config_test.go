package config

import (
	"strings"
	"testing"

	"confanon/internal/token"
)

// figure1 is the paper's worked example (Figure 1), indented in the usual
// IOS style.
const figure1 = `hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 2.2.129.2 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.2.2.2 remote-as 701
 neighbor 2.2.2.2 route-map UUNET-import in
 neighbor 2.2.2.2 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
!
route-map UUNET-import permit 20
!
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 any
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
end
`

func addr(t *testing.T, s string) uint32 {
	t.Helper()
	v, ok := token.ParseIPv4(s)
	if !ok {
		t.Fatalf("bad address %q", s)
	}
	return v
}

func TestParseFigure1(t *testing.T) {
	c := Parse(figure1)
	if c.Hostname != "cr1.lax.foo.com" {
		t.Errorf("Hostname = %q", c.Hostname)
	}
	if len(c.Banners) != 1 || len(c.Banners[0].Lines) != 2 {
		t.Fatalf("banner not parsed: %+v", c.Banners)
	}
	if len(c.Interfaces) != 2 {
		t.Fatalf("interfaces = %d, want 2", len(c.Interfaces))
	}
	e0 := c.Interface("Ethernet0")
	if e0 == nil || !e0.HasAddress || e0.Address.Addr != addr(t, "1.1.1.1") ||
		e0.Address.Mask != addr(t, "255.255.255.0") {
		t.Errorf("Ethernet0 = %+v", e0)
	}
	if e0.Description == "" {
		t.Error("Ethernet0 description lost")
	}
	s1 := c.Interface("Serial1/0.5")
	if s1 == nil || !s1.PointTo {
		t.Errorf("Serial1/0.5 = %+v", s1)
	}
	if c.BGP == nil || c.BGP.ASN != 1111 {
		t.Fatalf("BGP = %+v", c.BGP)
	}
	if len(c.BGP.Neighbors) != 1 {
		t.Fatalf("neighbors = %d", len(c.BGP.Neighbors))
	}
	nb := c.BGP.Neighbors[0]
	if nb.Addr != addr(t, "2.2.2.2") || nb.RemoteAS != 701 ||
		nb.RouteMapIn != "UUNET-import" || nb.RouteMapOut != "UUNET-export" {
		t.Errorf("neighbor = %+v", nb)
	}
	if len(c.BGP.Redistribute) != 1 || c.BGP.Redistribute[0] != "rip" {
		t.Errorf("redistribute = %v", c.BGP.Redistribute)
	}
	imp := c.RouteMap("UUNET-import")
	if imp == nil || len(imp.Clauses) != 2 {
		t.Fatalf("UUNET-import = %+v", imp)
	}
	if imp.Clauses[0].Action != "deny" || imp.Clauses[0].Seq != 10 ||
		len(imp.Clauses[0].Matches) != 2 {
		t.Errorf("clause 0 = %+v", imp.Clauses[0])
	}
	exp := c.RouteMap("UUNET-export")
	if exp == nil || len(exp.Clauses) != 1 {
		t.Fatalf("UUNET-export = %+v", exp)
	}
	if len(exp.Clauses[0].Sets) != 1 || exp.Clauses[0].Sets[0].Type != "community" {
		t.Errorf("set clauses = %+v", exp.Clauses[0].Sets)
	}
	acl := c.AccessList(143)
	if acl == nil || len(acl.Entries) != 1 {
		t.Fatalf("ACL 143 = %+v", acl)
	}
	ae := acl.Entries[0]
	if ae.Action != "permit" || ae.Proto != "ip" || ae.Src != addr(t, "1.1.1.0") ||
		ae.SrcWild != addr(t, "0.0.0.255") || !ae.DstAny {
		t.Errorf("ACL entry = %+v", ae)
	}
	cl := c.CommunityList(100)
	if cl == nil || cl.Entries[0].Expr != "701:7[1-5].." {
		t.Fatalf("community list = %+v", cl)
	}
	al := c.ASPathList(50)
	if al == nil || al.Entries[0].Regex != "(_1239_|_70[2-5]_)" {
		t.Fatalf("as-path list = %+v", al)
	}
	if c.RIP == nil || len(c.RIP.Networks) != 1 || c.RIP.Networks[0] != addr(t, "1.0.0.0") {
		t.Fatalf("RIP = %+v", c.RIP)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	c1 := Parse(figure1)
	text := c1.Render()
	c2 := Parse(text)
	text2 := c2.Render()
	if text != text2 {
		t.Errorf("render not idempotent:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	// Structural spot checks survive the round trip.
	if c2.Hostname != c1.Hostname || len(c2.Interfaces) != len(c1.Interfaces) ||
		len(c2.RouteMaps) != len(c1.RouteMaps) || c2.BGP.ASN != c1.BGP.ASN {
		t.Error("round trip changed structure")
	}
}

func TestRenderFullFeatures(t *testing.T) {
	c := &Config{
		Hostname: "r1",
		Domain:   "example.net",
		Dialect:  Dialect{Version: "12.2", IPClassless: true, ServiceTimestamps: true},
		Banners:  []Banner{{Kind: "login", Delim: '#', Lines: []string{"keep out"}}},
		Interfaces: []*Interface{
			{Name: "Loopback0", Address: AddrMask{addr(t, "10.0.0.1"), addr(t, "255.255.255.255")}, HasAddress: true},
			{Name: "Serial0/0", Bandwidth: 1544, Encap: "ppp", Shutdown: true},
			{Name: "FastEthernet0/1", Address: AddrMask{addr(t, "10.1.1.1"), addr(t, "255.255.255.0")},
				HasAddress: true,
				Secondary:  []AddrMask{{addr(t, "10.1.2.1"), addr(t, "255.255.255.0")}}},
		},
		BGP: &BGP{
			ASN: 65001, RouterID: addr(t, "10.0.0.1"), HasRouterID: true,
			ConfedID: 3, ConfedPeers: []uint32{65002, 65003},
			NoSynchronize: true, NoAutoSummary: true,
			Networks: []AddrMask{{addr(t, "10.1.0.0"), addr(t, "255.255.0.0")}},
			Neighbors: []*BGPNeighbor{{
				Addr: addr(t, "10.9.9.9"), RemoteAS: 701, Description: "upstream",
				UpdateSource: "Loopback0", NextHopSelf: true, SendComm: true,
				RouteMapIn: "in-map", RouteMapOut: "out-map",
			}},
			Redistribute: []string{"ospf 1"},
		},
		OSPF: []*OSPF{{
			PID: 1, RouterID: addr(t, "10.0.0.1"), HasRouterID: true,
			Networks:     []OSPFNetwork{{addr(t, "10.1.1.0"), addr(t, "0.0.0.255"), 0}},
			Passive:      []string{"FastEthernet0/1"},
			Redistribute: []string{"connected"},
		}},
		RIP:   &RIP{Version: 2, Networks: []uint32{addr(t, "10.0.0.0")}},
		EIGRP: []*EIGRP{{ASN: 100, Networks: []uint32{addr(t, "10.0.0.0")}}},
		AccessLists: []*AccessList{{Number: 10, Entries: []ACLEntry{
			{Action: "permit", Src: addr(t, "10.1.1.0"), SrcWild: addr(t, "0.0.0.255")},
		}}, {Number: 101, Entries: []ACLEntry{
			{Action: "deny", Proto: "tcp", SrcAny: true, Dst: addr(t, "10.1.1.5"), DstHost: true, HasDst: true, Trailing: "eq 23"},
		}}},
		RouteMaps: []*RouteMap{{Name: "in-map", Clauses: []*RouteMapClause{{
			Action: "permit", Seq: 10,
			Matches: []Clause{{Type: "as-path", Args: []string{"50"}}},
			Sets:    []Clause{{Type: "local-preference", Args: []string{"200"}}},
		}}}},
		CommunityLists: []*CommunityList{{Number: 1, Entries: []CommunityEntry{{Action: "permit", Expr: "701:100"}}}},
		ASPathLists:    []*ASPathList{{Number: 50, Entries: []ASPathEntry{{Action: "permit", Regex: "_701_"}}}},
		StaticRoutes: []*StaticRoute{
			{Dest: addr(t, "0.0.0.0"), Mask: addr(t, "0.0.0.0"), NextHop: addr(t, "10.9.9.9")},
			{Dest: addr(t, "10.5.0.0"), Mask: addr(t, "255.255.0.0"), NextHopIface: "Null0"},
		},
		SNMPCommunities: []string{"s3cret RO"},
		Users:           []string{"admin password 7 05080F1C2243"},
		DialerStrings:   []string{"5558675309"},
		NameServers:     []uint32{addr(t, "10.0.0.53")},
		Comments:        []string{"core router"},
	}
	text := c.Render()
	c2 := Parse(text)
	if c2.Render() != text {
		t.Error("full-featured render not idempotent")
	}
	if c2.BGP.ConfedID != 3 || len(c2.BGP.ConfedPeers) != 2 {
		t.Errorf("confederation lost: %+v", c2.BGP)
	}
	if len(c2.Interfaces[2].Secondary) != 1 {
		t.Error("secondary address lost")
	}
	if len(c2.StaticRoutes) != 2 || c2.StaticRoutes[1].NextHopIface != "Null0" {
		t.Errorf("static routes = %+v", c2.StaticRoutes)
	}
	if len(c2.EIGRP) != 1 || c2.EIGRP[0].ASN != 100 {
		t.Errorf("EIGRP = %+v", c2.EIGRP)
	}
	if len(c2.SNMPCommunities) != 1 || len(c2.DialerStrings) != 1 {
		t.Error("snmp/dialer lost")
	}
	if !c2.Dialect.IPClassless || !c2.Dialect.ServiceTimestamps {
		t.Error("dialect flags lost")
	}
	if c2.Interfaces[1].Bandwidth != 1544 || !c2.Interfaces[1].Shutdown {
		t.Errorf("interface attrs lost: %+v", c2.Interfaces[1])
	}
}

func TestMaskToLen(t *testing.T) {
	cases := []struct {
		mask string
		len  int
		ok   bool
	}{
		{"255.255.255.0", 24, true},
		{"255.255.255.252", 30, true},
		{"255.255.255.255", 32, true},
		{"0.0.0.0", 0, true},
		{"255.0.255.0", 0, false},
	}
	for _, c := range cases {
		l, ok := MaskToLen(addr(t, c.mask))
		if ok != c.ok || (ok && l != c.len) {
			t.Errorf("MaskToLen(%s) = %d,%v want %d,%v", c.mask, l, ok, c.len, c.ok)
		}
	}
	for i := 0; i <= 32; i++ {
		if l, ok := MaskToLen(LenToMask(i)); !ok || l != i {
			t.Errorf("LenToMask/MaskToLen round trip failed at %d", i)
		}
	}
}

func TestClassfulMask(t *testing.T) {
	if ClassfulMask(addr(t, "10.0.0.0")) != LenToMask(8) {
		t.Error("class A mask wrong")
	}
	if ClassfulMask(addr(t, "172.16.0.0")) != LenToMask(16) {
		t.Error("class B mask wrong")
	}
	if ClassfulMask(addr(t, "192.168.1.0")) != LenToMask(24) {
		t.Error("class C mask wrong")
	}
}

func TestParsePreservesUnknownLines(t *testing.T) {
	text := "hostname r1\nfancy new command 42\ninterface Ethernet0\n mysterious subcommand\n!\nend\n"
	c := Parse(text)
	if len(c.Extra) != 1 || c.Extra[0] != "fancy new command 42" {
		t.Errorf("Extra = %v", c.Extra)
	}
	if len(c.Interfaces) != 1 || len(c.Interfaces[0].Extra) != 1 {
		t.Errorf("interface extra = %+v", c.Interfaces)
	}
	// The unknown lines survive a render.
	out := c.Render()
	if !strings.Contains(out, "fancy new command 42") || !strings.Contains(out, "mysterious subcommand") {
		t.Error("unknown lines dropped by Render")
	}
}

func TestParseCommentLines(t *testing.T) {
	c := Parse("! built by netgen\n!\nhostname x\nend\n")
	if len(c.Comments) != 1 || c.Comments[0] != "built by netgen" {
		t.Errorf("Comments = %v", c.Comments)
	}
}

func TestPrefixString(t *testing.T) {
	p := Prefix{Addr: addr(t, "10.1.0.0"), Len: 16}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("Prefix.String = %q", p.String())
	}
}

func TestBGPNeighborAccumulation(t *testing.T) {
	text := `router bgp 100
 neighbor 1.2.3.4 remote-as 200
 neighbor 1.2.3.4 description peer one
 neighbor 5.6.7.8 remote-as 300
end
`
	c := Parse(text)
	if len(c.BGP.Neighbors) != 2 {
		t.Fatalf("neighbors = %d, want 2", len(c.BGP.Neighbors))
	}
	if c.BGP.Neighbors[0].Description != "peer one" {
		t.Error("multi-line neighbor config not accumulated")
	}
}

func TestStandardACLSingleAddress(t *testing.T) {
	c := Parse("access-list 5 permit 10.1.1.1\nend\n")
	acl := c.AccessList(5)
	if acl == nil || len(acl.Entries) != 1 {
		t.Fatalf("acl = %+v", acl)
	}
	if acl.Entries[0].Src != addr(t, "10.1.1.1") || acl.Entries[0].SrcWild != 0 {
		t.Errorf("entry = %+v", acl.Entries[0])
	}
}
