package config

import (
	"testing"
)

// FuzzParse is the native Go fuzz target the ci.sh smoke pass drives
// (the randomized quick.Check tests in parse_fuzz_test.go stay as the
// deterministic tier-1 versions). The parser sits in front of the
// anonymizer and the validation suites, and every byte it sees is
// attacker-controlled, so it must never panic and never lose lines.
func FuzzParse(f *testing.F) {
	f.Add("hostname r1\ninterface Ethernet0\n ip address 10.1.1.1 255.255.255.0\n")
	f.Add("router bgp 65000\n neighbor 10.0.0.1 remote-as 701\n")
	f.Add("banner motd #\nwelcome\n#\nend\n")
	f.Add("ip community-list 1 permit 701:1[0-9]\n")
	f.Add("interfaces {\n    ge-0/0/0 {\n        unit 0;\n    }\n}\n")
	f.Add("! comment\r\nno line\x00weird bytes\xff\n")
	f.Fuzz(func(t *testing.T, text string) {
		c := Parse(text) // must not panic
		if c == nil {
			t.Fatal("Parse returned nil")
		}
		// Rendering the model and reparsing the render must not panic
		// either (byte fidelity is covered by the unit tests).
		if c2 := Parse(c.Render()); c2 == nil {
			t.Fatal("reparse of render returned nil")
		}
	})
}
