// Package config models Cisco IOS-style router configuration files: a
// typed representation of the commands the paper's analyses depend on
// (interfaces, routing processes, routing policy), a renderer that prints
// the model as config text, and a parser that recovers the model from
// text — including anonymized text.
//
// The parser is deliberately tolerant: the paper stresses that no
// consistent grammar exists across the 200+ IOS versions in its dataset,
// so parsing is line- and prefix-based rather than grammar-based, and
// unrecognized lines are preserved verbatim in Extra so nothing is lost in
// a parse/render round trip.
package config

import (
	"fmt"
	"strings"

	"confanon/internal/token"
)

// AddrMask is an address with its netmask, as in "ip address A M".
type AddrMask struct {
	Addr uint32
	Mask uint32
}

// Prefix is an address with a prefix length.
type Prefix struct {
	Addr uint32
	Len  int
}

// String renders the prefix in a.b.c.d/len form.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", token.FormatIPv4(p.Addr), p.Len)
}

// MaskToLen converts a contiguous netmask to its prefix length; ok is
// false for discontiguous masks.
func MaskToLen(mask uint32) (int, bool) {
	inv := ^mask
	if inv&(inv+1) != 0 {
		return 0, false
	}
	n := 0
	for m := mask; m != 0; m <<= 1 {
		n++
	}
	return n, true
}

// LenToMask converts a prefix length to a netmask.
func LenToMask(n int) uint32 {
	if n <= 0 {
		return 0
	}
	if n >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - uint(n))
}

// ClassfulMask returns the implicit netmask of a classful network
// statement (class A /8, B /16, C /24), as assumed by older commands such
// as those configuring RIP and EIGRP.
func ClassfulMask(addr uint32) uint32 {
	switch {
	case addr>>31 == 0:
		return LenToMask(8)
	case addr>>30 == 0b10:
		return LenToMask(16)
	default:
		return LenToMask(24)
	}
}

// Banner is a multi-line banner block with its delimiter character.
type Banner struct {
	Kind  string // motd, login, exec
	Delim byte
	Lines []string
}

// Interface is one "interface X" block.
type Interface struct {
	Name        string
	Description string
	Address     AddrMask
	HasAddress  bool
	Secondary   []AddrMask
	Shutdown    bool
	Bandwidth   int
	Encap       string
	PointTo     bool // sub-interface declared point-to-point
	Extra       []string
}

// BGPNeighbor is one neighbor of a BGP process.
type BGPNeighbor struct {
	Addr         uint32
	RemoteAS     uint32
	Description  string
	RouteMapIn   string
	RouteMapOut  string
	UpdateSource string
	NextHopSelf  bool
	SendComm     bool
	RRClient     bool
}

// BGP is the "router bgp N" block.
type BGP struct {
	ASN           uint32
	RouterID      uint32
	HasRouterID   bool
	Networks      []AddrMask // "network A mask M" (mask may be classful)
	Neighbors     []*BGPNeighbor
	Redistribute  []string
	ConfedID      uint32
	ConfedPeers   []uint32
	NoSynchronize bool
	NoAutoSummary bool
	Extra         []string
}

// OSPFNetwork is one "network A W area N" statement.
type OSPFNetwork struct {
	Addr     uint32
	Wildcard uint32
	Area     uint32
}

// OSPF is one "router ospf PID" block.
type OSPF struct {
	PID          int
	RouterID     uint32
	HasRouterID  bool
	Networks     []OSPFNetwork
	Passive      []string
	Redistribute []string
	Extra        []string
}

// RIP is the "router rip" block; networks are classful addresses.
type RIP struct {
	Version      int
	Networks     []uint32
	Redistribute []string
	Extra        []string
}

// EIGRP is one "router eigrp ASN" block; networks are classful addresses.
type EIGRP struct {
	ASN          uint32
	Networks     []uint32
	Redistribute []string
	Extra        []string
}

// ACLEntry is one entry of a numbered access list.
type ACLEntry struct {
	Action   string // permit or deny
	Proto    string // ip, tcp, udp, icmp or empty for standard lists
	Src      uint32
	SrcWild  uint32
	SrcAny   bool
	SrcHost  bool
	Dst      uint32
	DstWild  uint32
	DstAny   bool
	DstHost  bool
	HasDst   bool
	Trailing string // ports, established, log ...
}

// AccessList is a numbered ACL.
type AccessList struct {
	Number  int
	Entries []ACLEntry
}

// RouteMapClause is one numbered clause of a route map.
type RouteMapClause struct {
	Action  string // permit or deny
	Seq     int
	Matches []Clause
	Sets    []Clause
}

// Clause is a generic "match X args" or "set X args" line.
type Clause struct {
	Type string // e.g. "ip address", "as-path", "community"
	Args []string
}

// RouteMap is a named routing policy.
type RouteMap struct {
	Name    string
	Clauses []*RouteMapClause
}

// CommunityEntry is one "ip community-list N permit X" entry. Expr is
// either a literal community (asn:value form or a bare number) or a
// regexp.
type CommunityEntry struct {
	Action string
	Expr   string
}

// CommunityList is a numbered community list.
type CommunityList struct {
	Number  int
	Entries []CommunityEntry
}

// ASPathEntry is one "ip as-path access-list N permit RE" entry.
type ASPathEntry struct {
	Action string
	Regex  string
}

// ASPathList is a numbered AS-path access list.
type ASPathList struct {
	Number  int
	Entries []ASPathEntry
}

// StaticRoute is one "ip route D M NH" line.
type StaticRoute struct {
	Dest    uint32
	Mask    uint32
	NextHop uint32
	// NextHopIface holds an interface name when the route points at an
	// interface instead of an address.
	NextHopIface string
}

// Dialect captures per-IOS-version syntax quirks the generator varies and
// the parser tolerates, standing in for the paper's 200+ IOS versions.
type Dialect struct {
	Version string
	// IPClassless emits "ip classless" (12.x default behavior written
	// explicitly by some versions).
	IPClassless bool
	// ServiceTimestamps emits the service timestamps preamble.
	ServiceTimestamps bool
	// BGPNewFormat writes community values in new-format asn:nn.
	BGPNewFormat bool
	// InterfaceStyle 0: Ethernet0, 1: FastEthernet0/0, 2: GigabitEthernet0/0/0.
	InterfaceStyle int
}

// Config is one router's configuration.
type Config struct {
	Hostname   string
	Domain     string
	Dialect    Dialect
	Banners    []Banner
	Interfaces []*Interface
	BGP        *BGP
	OSPF       []*OSPF
	RIP        *RIP
	EIGRP      []*EIGRP

	AccessLists    []*AccessList
	RouteMaps      []*RouteMap
	CommunityLists []*CommunityList
	ASPathLists    []*ASPathList
	StaticRoutes   []*StaticRoute

	SNMPCommunities []string
	Users           []string // "username U password P" raw remainder
	DialerStrings   []string
	NameServers     []uint32
	Comments        []string // free-standing "! text" comment lines
	Extra           []string // unrecognized top-level lines, preserved
}

// Find helpers used by the routing extractor and validators.

// Interface returns the named interface, or nil.
func (c *Config) Interface(name string) *Interface {
	for _, ifc := range c.Interfaces {
		if strings.EqualFold(ifc.Name, name) {
			return ifc
		}
	}
	return nil
}

// RouteMap returns the named route map, or nil.
func (c *Config) RouteMap(name string) *RouteMap {
	for _, rm := range c.RouteMaps {
		if rm.Name == name {
			return rm
		}
	}
	return nil
}

// ASPathList returns the numbered as-path list, or nil.
func (c *Config) ASPathList(n int) *ASPathList {
	for _, l := range c.ASPathLists {
		if l.Number == n {
			return l
		}
	}
	return nil
}

// CommunityList returns the numbered community list, or nil.
func (c *Config) CommunityList(n int) *CommunityList {
	for _, l := range c.CommunityLists {
		if l.Number == n {
			return l
		}
	}
	return nil
}

// AccessList returns the numbered access list, or nil.
func (c *Config) AccessList(n int) *AccessList {
	for _, l := range c.AccessLists {
		if l.Number == n {
			return l
		}
	}
	return nil
}
