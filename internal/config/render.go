package config

import (
	"fmt"
	"strings"

	"confanon/internal/token"
)

// Render prints the configuration as IOS-style text. The output parses
// back to an equivalent model (see the round-trip tests), which is what
// lets the validation suites compare pre- and post-anonymization configs
// structurally.
func (c *Config) Render() string {
	var b strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	bang := func() { b.WriteString("!\n") }

	if c.Dialect.ServiceTimestamps {
		w("service timestamps debug datetime msec")
		w("service timestamps log datetime msec")
	}
	w("version %s", orDefault(c.Dialect.Version, "12.0"))
	bang()
	w("hostname %s", c.Hostname)
	bang()
	if c.Domain != "" {
		w("ip domain-name %s", c.Domain)
	}
	for _, ns := range c.NameServers {
		w("ip name-server %s", token.FormatIPv4(ns))
	}
	for _, u := range c.Users {
		w("username %s", u)
	}
	for _, cm := range c.Comments {
		w("! %s", cm)
	}
	for _, bn := range c.Banners {
		w("banner %s %c", bn.Kind, bn.Delim)
		for _, l := range bn.Lines {
			w("%s", l)
		}
		w("%c", bn.Delim)
	}
	bang()
	if c.Dialect.IPClassless {
		w("ip classless")
	}
	for _, ifc := range c.Interfaces {
		if ifc.PointTo {
			w("interface %s point-to-point", ifc.Name)
		} else {
			w("interface %s", ifc.Name)
		}
		if ifc.Description != "" {
			w(" description %s", ifc.Description)
		}
		if ifc.Bandwidth > 0 {
			w(" bandwidth %d", ifc.Bandwidth)
		}
		if ifc.Encap != "" {
			w(" encapsulation %s", ifc.Encap)
		}
		if ifc.HasAddress {
			w(" ip address %s %s", token.FormatIPv4(ifc.Address.Addr), token.FormatIPv4(ifc.Address.Mask))
		} else {
			w(" no ip address")
		}
		for _, sec := range ifc.Secondary {
			w(" ip address %s %s secondary", token.FormatIPv4(sec.Addr), token.FormatIPv4(sec.Mask))
		}
		for _, e := range ifc.Extra {
			w(" %s", e)
		}
		if ifc.Shutdown {
			w(" shutdown")
		}
		bang()
	}
	for _, o := range c.OSPF {
		w("router ospf %d", o.PID)
		if o.HasRouterID {
			w(" router-id %s", token.FormatIPv4(o.RouterID))
		}
		for _, r := range o.Redistribute {
			w(" redistribute %s", r)
		}
		for _, p := range o.Passive {
			w(" passive-interface %s", p)
		}
		for _, n := range o.Networks {
			w(" network %s %s area %d", token.FormatIPv4(n.Addr), token.FormatIPv4(n.Wildcard), n.Area)
		}
		for _, e := range o.Extra {
			w(" %s", e)
		}
		bang()
	}
	if c.RIP != nil {
		w("router rip")
		if c.RIP.Version > 0 {
			w(" version %d", c.RIP.Version)
		}
		for _, r := range c.RIP.Redistribute {
			w(" redistribute %s", r)
		}
		for _, n := range c.RIP.Networks {
			w(" network %s", token.FormatIPv4(n))
		}
		for _, e := range c.RIP.Extra {
			w(" %s", e)
		}
		bang()
	}
	for _, e := range c.EIGRP {
		w("router eigrp %d", e.ASN)
		for _, r := range e.Redistribute {
			w(" redistribute %s", r)
		}
		for _, n := range e.Networks {
			w(" network %s", token.FormatIPv4(n))
		}
		for _, x := range e.Extra {
			w(" %s", x)
		}
		bang()
	}
	if c.BGP != nil {
		g := c.BGP
		w("router bgp %d", g.ASN)
		if g.HasRouterID {
			w(" bgp router-id %s", token.FormatIPv4(g.RouterID))
		}
		if g.ConfedID != 0 {
			w(" bgp confederation identifier %d", g.ConfedID)
		}
		if len(g.ConfedPeers) > 0 {
			parts := make([]string, len(g.ConfedPeers))
			for i, p := range g.ConfedPeers {
				parts[i] = fmt.Sprintf("%d", p)
			}
			w(" bgp confederation peers %s", strings.Join(parts, " "))
		}
		if g.NoSynchronize {
			w(" no synchronization")
		}
		if g.NoAutoSummary {
			w(" no auto-summary")
		}
		for _, r := range g.Redistribute {
			w(" redistribute %s", r)
		}
		for _, n := range g.Networks {
			w(" network %s mask %s", token.FormatIPv4(n.Addr), token.FormatIPv4(n.Mask))
		}
		for _, nb := range g.Neighbors {
			a := token.FormatIPv4(nb.Addr)
			w(" neighbor %s remote-as %d", a, nb.RemoteAS)
			if nb.Description != "" {
				w(" neighbor %s description %s", a, nb.Description)
			}
			if nb.UpdateSource != "" {
				w(" neighbor %s update-source %s", a, nb.UpdateSource)
			}
			if nb.RRClient {
				w(" neighbor %s route-reflector-client", a)
			}
			if nb.NextHopSelf {
				w(" neighbor %s next-hop-self", a)
			}
			if nb.SendComm {
				w(" neighbor %s send-community", a)
			}
			if nb.RouteMapIn != "" {
				w(" neighbor %s route-map %s in", a, nb.RouteMapIn)
			}
			if nb.RouteMapOut != "" {
				w(" neighbor %s route-map %s out", a, nb.RouteMapOut)
			}
		}
		for _, e := range g.Extra {
			w(" %s", e)
		}
		bang()
	}
	for _, rm := range c.RouteMaps {
		for _, cl := range rm.Clauses {
			w("route-map %s %s %d", rm.Name, cl.Action, cl.Seq)
			for _, m := range cl.Matches {
				w(" match %s %s", m.Type, strings.Join(m.Args, " "))
			}
			for _, s := range cl.Sets {
				w(" set %s %s", s.Type, strings.Join(s.Args, " "))
			}
			bang()
		}
	}
	for _, acl := range c.AccessLists {
		for _, e := range acl.Entries {
			var parts []string
			parts = append(parts, fmt.Sprintf("access-list %d %s", acl.Number, e.Action))
			if e.Proto != "" {
				parts = append(parts, e.Proto)
			}
			parts = append(parts, renderACLAddr(e.Src, e.SrcWild, e.SrcAny, e.SrcHost))
			if e.HasDst {
				parts = append(parts, renderACLAddr(e.Dst, e.DstWild, e.DstAny, e.DstHost))
			}
			if e.Trailing != "" {
				parts = append(parts, e.Trailing)
			}
			w("%s", strings.Join(parts, " "))
		}
	}
	for _, cl := range c.CommunityLists {
		for _, e := range cl.Entries {
			w("ip community-list %d %s %s", cl.Number, e.Action, e.Expr)
		}
	}
	for _, al := range c.ASPathLists {
		for _, e := range al.Entries {
			w("ip as-path access-list %d %s %s", al.Number, e.Action, e.Regex)
		}
	}
	for _, sr := range c.StaticRoutes {
		if sr.NextHopIface != "" {
			w("ip route %s %s %s", token.FormatIPv4(sr.Dest), token.FormatIPv4(sr.Mask), sr.NextHopIface)
		} else {
			w("ip route %s %s %s", token.FormatIPv4(sr.Dest), token.FormatIPv4(sr.Mask), token.FormatIPv4(sr.NextHop))
		}
	}
	for _, s := range c.SNMPCommunities {
		w("snmp-server community %s", s)
	}
	for _, d := range c.DialerStrings {
		w("dialer string %s", d)
	}
	for _, e := range c.Extra {
		w("%s", e)
	}
	w("end")
	return b.String()
}

func renderACLAddr(addr, wild uint32, any, host bool) string {
	switch {
	case any:
		return "any"
	case host:
		return "host " + token.FormatIPv4(addr)
	default:
		return token.FormatIPv4(addr) + " " + token.FormatIPv4(wild)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
