// Package store implements the durable per-owner mapping ledger: a
// crash-safe, append-only record of everything a confanon Session has
// resolved — IP mapping pairs in tree-insertion order, leak-recorder
// entries, operator-added sensitive tokens, declared relations — so that
// the mapping survives restarts and any replica holding the ledger can
// serve any owner consistently (the clearinghouse model of the paper's
// §7, where the same network's configs arrive repeatedly).
//
// # On-disk layout
//
// A ledger is a directory of JSONL segment files, seg-000001.jsonl,
// seg-000002.jsonl, ..., replayed in order. Every line is a CRC-framed
// envelope:
//
//	{"c":<crc32>,"r":{"t":"ip","in":201392643,"out":3146518787}}
//
// where c is the IEEE CRC-32 of the exact bytes of r. The first record
// of each segment is an "open" header carrying the schema
// (confanon.mapping/v1) and the owner's salt fingerprint; "commit"
// records mark durability points. Appends buffer in memory and reach the
// OS only at Commit, which writes a commit record and fsyncs — so the
// commit protocol gives exactly the batch layer's clean-file-boundary
// semantics: a crash mid-file (between appends, or between an append and
// its commit) loses nothing but the uncommitted suffix, which replay
// discards.
//
// # Recovery
//
// Open replays every segment. Records after the last valid commit —
// including a torn final line from a crash mid-write — are discarded
// silently (that is the designed crash window). A record that fails its
// CRC or does not parse *before* a later valid commit is corruption of
// durable data and fails Open with ErrCorrupt: the ledger never guesses
// at committed state.
//
// # Compaction
//
// Replay cost grows with dead weight (a segment per process restart,
// re-resolved pairs). Compact writes the entire live state as one fresh
// committed segment, fsyncs it, and deletes the older segments; a crash
// between those two steps leaves both, which is safe because replaying
// the old segments before the snapshot reproduces the identical state
// (every record type is idempotent under re-application). Commit
// triggers compaction automatically when the dead-weight ratio passes a
// threshold; long-running services can also run MaybeCompact from a
// background housekeeping loop.
//
// # Sensitivity
//
// A ledger holds the owner's raw mapping — original addresses, the
// leak recorder's cleartext tokens — and is exactly as sensitive as the
// salt itself. Directories are created 0700 and segments 0600; treat the
// state directory like a key store, never like output.
package store

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"confanon/internal/retry"
)

// ioRetry shields the ledger's durability syscalls — the flush/fsync
// pair in Commit and compaction's segment removals — from transient
// failures (EINTR, EAGAIN, exhausted descriptors) under the shared
// backoff policy. No jitter: these retries run with the ledger lock
// held, and random extra sleep there serves nobody.
var ioRetry = retry.Default.NoJitter()

// SaltFingerprint derives the opaque owner identifier ledgers are keyed
// by: a domain-separated SHA-256 of the salt, hex-encoded. It names the
// owner without revealing the salt, so it is safe in file headers, paths,
// and logs.
func SaltFingerprint(salt []byte) string {
	h := sha256.Sum256(append([]byte("confanon.saltfp/"), salt...))
	return hex.EncodeToString(h[:])
}

// Schema identifies the segment layout; the "open" header of every
// segment carries it.
const Schema = "confanon.mapping/v1"

// Record types (the "t" field of a ledger record).
const (
	// TOpen is the segment header: schema, salt fingerprint, segment
	// index.
	TOpen = "open"
	// TCommit marks a durability point: replay applies records only up
	// to the last valid commit.
	TCommit = "commit"
	// TIP is one resolved IP mapping pair, in tree-insertion order
	// (replay order is the mapping: the shaped tree is order-dependent).
	TIP = "ip"
	// TASN is one leak-recorder entry: a public ASN the session mapped.
	TASN = "asn"
	// TWord is one leak-recorder entry: a word the session hashed.
	TWord = "word"
	// TOrigIP is one leak-recorder entry: an original address the
	// session mapped (recorded for the leak report's survival scan).
	TOrigIP = "oip"
	// TSensitive is one operator-added sensitive token.
	TSensitive = "sens"
	// TRelation is one declared (ASN, prefix) external relation.
	TRelation = "rel"
)

// Record is one ledger entry. The fields used depend on T: ip pairs use
// In/Out, string-valued entries (asn, word, sens) use V, original IPs
// use In, relations use ASN/Prefix/Len, the open header uses
// Schema/SaltFP/Seg, and commits use N (the cumulative record count the
// commit covers, a cheap consistency check on replay).
type Record struct {
	T string `json:"t"`

	In  uint32 `json:"in,omitempty"`
	Out uint32 `json:"out,omitempty"`
	V   string `json:"v,omitempty"`

	ASN    uint32 `json:"asn,omitempty"`
	Prefix uint32 `json:"prefix,omitempty"`
	Len    int    `json:"len,omitempty"`

	Schema string `json:"schema,omitempty"`
	SaltFP string `json:"salt_fp,omitempty"`
	Seg    int    `json:"seg,omitempty"`
	N      int    `json:"n,omitempty"`
}

// Pair is one resolved IP mapping pair (mirrors ipanon.Pair without the
// dependency; store stays stdlib-only).
type Pair struct{ In, Out uint32 }

// Relation is one declared (ASN, prefix, len) external relation.
type Relation struct {
	ASN    uint32
	Prefix uint32
	Len    int
}

// State is the replayed, committed content of a ledger: everything a
// Session needs to continue (or a replica to reproduce) an owner's
// mapping. IPs preserve insertion order — the shaped tree depends on it.
type State struct {
	IPs       []Pair
	ASNs      []string
	Words     []string
	OrigIPs   []uint32
	Sensitive []string
	Relations []Relation
}

// Empty reports whether the state carries nothing.
func (s *State) Empty() bool {
	return len(s.IPs) == 0 && len(s.ASNs) == 0 && len(s.Words) == 0 &&
		len(s.OrigIPs) == 0 && len(s.Sensitive) == 0 && len(s.Relations) == 0
}

// records flattens the state into replayable ledger records (IP pairs
// first, preserving insertion order).
func (s *State) records() []Record {
	recs := make([]Record, 0, len(s.IPs)+len(s.ASNs)+len(s.Words)+
		len(s.OrigIPs)+len(s.Sensitive)+len(s.Relations))
	for _, p := range s.IPs {
		recs = append(recs, Record{T: TIP, In: p.In, Out: p.Out})
	}
	for _, v := range s.ASNs {
		recs = append(recs, Record{T: TASN, V: v})
	}
	for _, v := range s.Words {
		recs = append(recs, Record{T: TWord, V: v})
	}
	for _, ip := range s.OrigIPs {
		recs = append(recs, Record{T: TOrigIP, In: ip})
	}
	for _, v := range s.Sensitive {
		recs = append(recs, Record{T: TSensitive, V: v})
	}
	for _, r := range s.Relations {
		recs = append(recs, Record{T: TRelation, ASN: r.ASN, Prefix: r.Prefix, Len: r.Len})
	}
	return recs
}

// apply folds one data record into the state. Re-application is
// idempotent for every type except IP insertion order, which replay
// keeps stable by construction (a pair already present is skipped, so a
// compacted snapshot replayed after the segments it summarizes changes
// nothing).
func (s *State) apply(r Record, seenIP map[uint32]bool, seenStr map[string]bool) {
	switch r.T {
	case TIP:
		if !seenIP[r.In] {
			seenIP[r.In] = true
			s.IPs = append(s.IPs, Pair{In: r.In, Out: r.Out})
		}
	case TASN:
		if k := "a\x00" + r.V; !seenStr[k] {
			seenStr[k] = true
			s.ASNs = append(s.ASNs, r.V)
		}
	case TWord:
		if k := "w\x00" + r.V; !seenStr[k] {
			seenStr[k] = true
			s.Words = append(s.Words, r.V)
		}
	case TOrigIP:
		if k := fmt.Sprintf("o\x00%d", r.In); !seenStr[k] {
			seenStr[k] = true
			s.OrigIPs = append(s.OrigIPs, r.In)
		}
	case TSensitive:
		if k := "s\x00" + r.V; !seenStr[k] {
			seenStr[k] = true
			s.Sensitive = append(s.Sensitive, r.V)
		}
	case TRelation:
		if k := fmt.Sprintf("r\x00%d/%d/%d", r.ASN, r.Prefix, r.Len); !seenStr[k] {
			seenStr[k] = true
			s.Relations = append(s.Relations, Relation{ASN: r.ASN, Prefix: r.Prefix, Len: r.Len})
		}
	}
}

// Errors.
var (
	// ErrCorrupt reports a record inside the committed region that fails
	// its CRC or does not parse — durable data the ledger cannot trust.
	ErrCorrupt = errors.New("store: ledger corrupt inside committed region")
	// ErrSchema reports a segment whose open header carries a foreign
	// schema.
	ErrSchema = errors.New("store: not a " + Schema + " ledger")
	// ErrSaltMismatch reports a ledger written under a different owner
	// salt than the one opening it — replaying it would silently produce
	// an inconsistent mapping, so Open refuses.
	ErrSaltMismatch = errors.New("store: ledger salt fingerprint mismatch")
)

// envelope is the CRC frame around every line: C is the IEEE CRC-32 of
// the exact bytes of R as written (json.RawMessage round-trips them
// verbatim).
type envelope struct {
	C uint32          `json:"c"`
	R json.RawMessage `json:"r"`
}

// encodeLine frames one record.
func encodeLine(r Record) ([]byte, error) {
	inner, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(envelope{C: crc32.ChecksumIEEE(inner), R: inner})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeLine unframes one line, verifying the CRC.
func decodeLine(line []byte) (Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, fmt.Errorf("bad envelope: %w", err)
	}
	if crc32.ChecksumIEEE(env.R) != env.C {
		return Record{}, errors.New("crc mismatch")
	}
	var rec Record
	if err := json.Unmarshal(env.R, &rec); err != nil {
		return Record{}, fmt.Errorf("bad record: %w", err)
	}
	return rec, nil
}

// crashHook, when set, is invoked at the named points of the commit
// protocol ("append" after records reach the segment buffer, "commit"
// just before the commit record is written, "committed" after the
// fsync). Chaos tests inject panics here to simulate a crash between
// append and commit; production code never sets it.
var crashHook func(event string)

// SetCrashHook installs (or, with nil, removes) the chaos-testing hook.
func SetCrashHook(h func(event string)) { crashHook = h }

func fireCrashHook(event string) {
	if crashHook != nil {
		crashHook(event)
	}
}

// Ledger is one owner's open mapping ledger: the replayed committed
// state plus an active segment receiving appends. Safe for concurrent
// use; Append and Commit serialize internally (callers batch appends at
// clean file boundaries, so the lock is never on a per-token path).
type Ledger struct {
	mu sync.Mutex

	dir    string
	saltFP string

	f        *os.File
	w        *bufio.Writer
	seg      int
	segRecs  int // records written to the active segment (committed + pending)
	pending  []Record
	state    State
	seenIP   map[uint32]bool
	seenStr  map[string]bool
	closed   bool
	diskRecs int // data records replayed from older segments (incl. duplicates)

	// CompactThreshold is the dead-weight ratio (total replayed records
	// across segments vs live state records) beyond which Commit
	// compacts; <=1 disables automatic compaction. Set before first
	// Commit.
	CompactThreshold float64
	// compactFloor avoids churning tiny ledgers: no automatic compaction
	// below this many total records.
	compactFloor int
}

// Open replays the ledger directory (creating it if absent), verifies
// the salt fingerprint, and starts a fresh active segment. saltFP is an
// opaque owner identifier — callers derive it from the salt (never the
// salt itself); an existing ledger written under a different fingerprint
// fails with ErrSaltMismatch.
func Open(dir, saltFP string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	l := &Ledger{
		dir:              dir,
		saltFP:           saltFP,
		seenIP:           make(map[uint32]bool),
		seenStr:          make(map[string]bool),
		CompactThreshold: 3,
		compactFloor:     1024,
	}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		n, err := l.replaySegment(seg)
		if err != nil {
			return nil, err
		}
		l.diskRecs += n
	}
	l.seg = 1
	if n := len(segs); n > 0 {
		last, perr := segIndex(segs[n-1])
		if perr != nil {
			return nil, perr
		}
		l.seg = last + 1
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// segments lists the ledger's segment files in replay order.
func (l *Ledger) segments() ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, err := segIndex(e.Name()); err == nil {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// segIndex parses a segment file name ("seg-000042.jsonl" → 42).
func segIndex(name string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(name, "seg-%06d.jsonl", &n); err != nil {
		return 0, err
	}
	if fmt.Sprintf("seg-%06d.jsonl", n) != name {
		return 0, fmt.Errorf("store: not a segment name: %q", name)
	}
	return n, nil
}

func (l *Ledger) segPath(n int) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%06d.jsonl", n))
}

// replaySegment folds one segment's committed records into the state.
// Returns the number of committed data records applied.
func (l *Ledger) replaySegment(name string) (int, error) {
	f, err := os.Open(filepath.Join(l.dir, name))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	// Two-phase replay: scan every line first so corruption can be
	// classified (before vs after the last commit), then apply the
	// committed prefix.
	type scanned struct {
		rec Record
		err error
	}
	var lines []scanned
	lastCommit := -1
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		rec, derr := decodeLine(raw)
		lines = append(lines, scanned{rec: rec, err: derr})
		if derr == nil && rec.T == TCommit {
			lastCommit = len(lines) - 1
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("store: reading %s: %w", name, err)
	}
	applied := 0
	for i, ln := range lines {
		if i > lastCommit {
			break // uncommitted suffix (incl. a torn tail): discarded
		}
		if ln.err != nil {
			return 0, fmt.Errorf("%w (%s line %d: %v)", ErrCorrupt, name, i+1, ln.err)
		}
		switch ln.rec.T {
		case TOpen:
			if ln.rec.Schema != Schema {
				return 0, fmt.Errorf("%w (%s carries %q)", ErrSchema, name, ln.rec.Schema)
			}
			if ln.rec.SaltFP != l.saltFP {
				return 0, fmt.Errorf("%w (%s)", ErrSaltMismatch, name)
			}
		case TCommit:
			// Durability marker; nothing to apply.
		default:
			l.state.apply(ln.rec, l.seenIP, l.seenStr)
			applied++
		}
	}
	// A segment with no commit contributes nothing — but its header, if
	// readable, must still agree on schema and salt.
	if lastCommit < 0 {
		for _, ln := range lines {
			if ln.err == nil && ln.rec.T == TOpen {
				if ln.rec.Schema != Schema {
					return 0, fmt.Errorf("%w (%s carries %q)", ErrSchema, name, ln.rec.Schema)
				}
				if ln.rec.SaltFP != l.saltFP {
					return 0, fmt.Errorf("%w (%s)", ErrSaltMismatch, name)
				}
			}
			break // only the first line can be the header
		}
	}
	return applied, nil
}

// openSegment starts the active segment with its open header (buffered;
// the header becomes durable with the first commit).
func (l *Ledger) openSegment() error {
	f, err := os.OpenFile(l.segPath(l.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segRecs = 0
	line, err := encodeLine(Record{T: TOpen, Schema: Schema, SaltFP: l.saltFP, Seg: l.seg})
	if err != nil {
		return err
	}
	_, err = l.w.Write(line)
	return err
}

// stateLen counts the live state's data records.
func (l *Ledger) stateLen() int {
	s := &l.state
	return len(s.IPs) + len(s.ASNs) + len(s.Words) + len(s.OrigIPs) +
		len(s.Sensitive) + len(s.Relations)
}

// State returns a copy of the committed state (replayed at Open plus
// every Commit since).
func (l *Ledger) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return State{
		IPs:       append([]Pair(nil), l.state.IPs...),
		ASNs:      append([]string(nil), l.state.ASNs...),
		Words:     append([]string(nil), l.state.Words...),
		OrigIPs:   append([]uint32(nil), l.state.OrigIPs...),
		Sensitive: append([]string(nil), l.state.Sensitive...),
		Relations: append([]Relation(nil), l.state.Relations...),
	}
}

// SaltFP returns the owner fingerprint the ledger was opened with.
func (l *Ledger) SaltFP() string { return l.saltFP }

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Append buffers records onto the active segment. Nothing is durable —
// or visible to State — until Commit.
func (l *Ledger) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: ledger closed")
	}
	for _, r := range recs {
		line, err := encodeLine(r)
		if err != nil {
			return err
		}
		if _, err := l.w.Write(line); err != nil {
			return err
		}
		l.segRecs++
	}
	l.pending = append(l.pending, recs...)
	fireCrashHook("append")
	return nil
}

// Commit makes every buffered record durable: it writes a commit
// record, flushes, and fsyncs the segment. On success the records are
// folded into State. Commit with nothing pending is a no-op (no fsync).
func (l *Ledger) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: ledger closed")
	}
	if len(l.pending) == 0 {
		return nil
	}
	fireCrashHook("commit")
	line, err := encodeLine(Record{T: TCommit, N: l.segRecs})
	if err != nil {
		return err
	}
	if _, err := l.w.Write(line); err != nil {
		return err
	}
	// Flush and fsync are retried as one unit: a re-run flush after a
	// partial failure is a cheap no-op, and the pair succeeding is what
	// "committed" means.
	if err := ioRetry.Do(context.Background(), func() error {
		if err := l.w.Flush(); err != nil {
			return err
		}
		return l.f.Sync()
	}); err != nil {
		return err
	}
	fireCrashHook("committed")
	for _, r := range l.pending {
		l.state.apply(r, l.seenIP, l.seenStr)
	}
	l.pending = l.pending[:0]
	if l.shouldCompact() {
		return l.compactLocked()
	}
	return nil
}

// shouldCompact reports whether replay dead weight warrants compaction:
// the on-disk data record count (replayed total plus the active
// segment's counter) exceeds CompactThreshold times the live state,
// above the churn floor. Called with mu held.
func (l *Ledger) shouldCompact() bool {
	if l.CompactThreshold <= 1 {
		return false
	}
	live := l.stateLen()
	onDisk := l.diskRecs + l.segRecs
	return onDisk >= l.compactFloor && float64(onDisk) > l.CompactThreshold*float64(live)
}

// MaybeCompact compacts when the dead-weight heuristic says so; the
// no-op path is cheap, so background housekeeping loops can call it on
// a timer.
func (l *Ledger) MaybeCompact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.shouldCompact() {
		return nil
	}
	return l.compactLocked()
}

// Compact rewrites the ledger as one fresh committed snapshot segment
// and removes the older segments. Uncommitted appends survive: they are
// re-buffered onto the new active segment (still uncommitted).
func (l *Ledger) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("store: ledger closed")
	}
	return l.compactLocked()
}

// compactLocked does the work of Compact with mu held.
func (l *Ledger) compactLocked() error {
	pending := append([]Record(nil), l.pending...)
	// Close the current active segment; its committed content is about
	// to be superseded, and its uncommitted tail is re-buffered below.
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	old, err := l.segments()
	if err != nil {
		return err
	}
	// Write the snapshot as the next segment and make it durable before
	// any old segment is touched. A crash before the removals leaves old
	// + snapshot, which replays to the identical state (idempotent
	// records); a crash before the snapshot's commit record leaves the
	// snapshot uncommitted and therefore ignored.
	l.seg++
	if err := l.openSegment(); err != nil {
		return err
	}
	snap := l.state.records()
	for _, r := range snap {
		line, lerr := encodeLine(r)
		if lerr != nil {
			return lerr
		}
		if _, werr := l.w.Write(line); werr != nil {
			return werr
		}
		l.segRecs++
	}
	line, err := encodeLine(Record{T: TCommit, N: l.segRecs})
	if err != nil {
		return err
	}
	if _, err := l.w.Write(line); err != nil {
		return err
	}
	if err := ioRetry.Do(context.Background(), func() error {
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		return syncDir(l.dir)
	}); err != nil {
		return err
	}
	for _, name := range old {
		path := filepath.Join(l.dir, name)
		if err := ioRetry.Do(context.Background(), func() error { return os.Remove(path) }); err != nil {
			return err
		}
	}
	l.diskRecs = l.segRecs
	l.segRecs = 0
	// Re-buffer the uncommitted tail onto the snapshot segment.
	l.pending = l.pending[:0]
	for _, r := range pending {
		eline, lerr := encodeLine(r)
		if lerr != nil {
			return lerr
		}
		if _, werr := l.w.Write(eline); werr != nil {
			return werr
		}
		l.segRecs++
	}
	l.pending = append(l.pending, pending...)
	return nil
}

// Segments reports how many segment files the ledger currently spans
// (for tests and operational introspection).
func (l *Ledger) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return 0
	}
	return len(segs)
}

// Close flushes and closes the active segment. Uncommitted records are
// NOT committed — they are the crash window by design; call Commit
// first if they must survive.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable (best-effort on platforms where directories reject Sync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// EncodeState renders a State as a self-contained, single-segment ledger
// blob (open header, records, one commit) — the versioned snapshot
// format behind Session.SaveMapping. DecodeState reads it back; the two
// round-trip byte-exactly through the same codec the on-disk segments
// use.
func EncodeState(s *State, saltFP string) ([]byte, error) {
	var buf []byte
	write := func(r Record) error {
		line, err := encodeLine(r)
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		return nil
	}
	if err := write(Record{T: TOpen, Schema: Schema, SaltFP: saltFP, Seg: 1}); err != nil {
		return nil, err
	}
	recs := s.records()
	for _, r := range recs {
		if err := write(r); err != nil {
			return nil, err
		}
	}
	if err := write(Record{T: TCommit, N: len(recs)}); err != nil {
		return nil, err
	}
	return buf, nil
}

// IsStateBlob sniffs whether a snapshot was written by EncodeState (as
// opposed to a legacy format a caller may fall back to).
func IsStateBlob(blob []byte) bool {
	if len(blob) == 0 || blob[0] != '{' {
		return false
	}
	i := 0
	for i < len(blob) && blob[i] != '\n' {
		i++
	}
	rec, err := decodeLine(blob[:i])
	return err == nil && rec.T == TOpen && rec.Schema == Schema
}

// DecodeState parses an EncodeState blob, returning the state and the
// salt fingerprint it was written under. The same commit-gating as
// segment replay applies: a blob without a valid commit is empty, and
// corruption before the commit is an error.
func DecodeState(blob []byte) (State, string, error) {
	var (
		st      State
		saltFP  string
		seenIP  = make(map[uint32]bool)
		seenStr = make(map[string]bool)
	)
	type scanned struct {
		rec Record
		err error
	}
	var lines []scanned
	lastCommit := -1
	for start := 0; start < len(blob); {
		end := start
		for end < len(blob) && blob[end] != '\n' {
			end++
		}
		if end > start {
			rec, derr := decodeLine(blob[start:end])
			lines = append(lines, scanned{rec: rec, err: derr})
			if derr == nil && rec.T == TCommit {
				lastCommit = len(lines) - 1
			}
		}
		start = end + 1
	}
	if len(lines) == 0 {
		return State{}, "", ErrSchema
	}
	for i, ln := range lines {
		if i > lastCommit {
			break
		}
		if ln.err != nil {
			return State{}, "", fmt.Errorf("%w (line %d: %v)", ErrCorrupt, i+1, ln.err)
		}
		switch ln.rec.T {
		case TOpen:
			if ln.rec.Schema != Schema {
				return State{}, "", ErrSchema
			}
			saltFP = ln.rec.SaltFP
		case TCommit:
		default:
			st.apply(ln.rec, seenIP, seenStr)
		}
	}
	if lastCommit < 0 {
		// No commit: accept only a bare valid header (empty state).
		if lines[0].err != nil || lines[0].rec.T != TOpen || lines[0].rec.Schema != Schema {
			return State{}, "", ErrSchema
		}
		saltFP = lines[0].rec.SaltFP
	}
	return st, saltFP, nil
}
