package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

const testFP = "fp-test-owner"

func sampleState() State {
	return State{
		IPs:       []Pair{{In: 0x0c000201, Out: 0xbb901103}, {In: 0x0a000001, Out: 0x55aa0001}},
		ASNs:      []string{"65001", "7018"},
		Words:     []string{"chicago", "backbone"},
		OrigIPs:   []uint32{0x0c000201, 0x0a000001},
		Sensitive: []string{"s3cret", "hunter2"},
		Relations: []Relation{{ASN: 7018, Prefix: 0x0c000200, Len: 24}},
	}
}

func appendState(t *testing.T, l *Ledger, s State) {
	t.Helper()
	if err := l.Append(s.records()...); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := sampleState()
	appendState(t, l, want)
	if got := l.State(); !got.Empty() {
		t.Fatalf("uncommitted appends visible in State: %+v", got)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := l.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-commit State = %+v, want %+v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh Open replays to the identical state.
	l2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed State = %+v, want %+v", got, want)
	}
}

func TestLedgerUncommittedTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	committed := State{IPs: []Pair{{In: 1, Out: 2}}}
	appendState(t, l, committed)
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Appended but never committed: the designed crash window.
	if err := l.Append(Record{T: TIP, In: 9, Out: 10}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.State(); !reflect.DeepEqual(got, committed) {
		t.Fatalf("replay kept uncommitted tail: %+v", got)
	}
}

func TestLedgerTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	committed := State{IPs: []Pair{{In: 1, Out: 2}}, Words: []string{"w"}}
	appendState(t, l, committed)
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-write: a torn, truncated line after the last
	// commit.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.WriteString(`{"c":123,"r":{"t":"ip","in":`); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	l2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if got := l2.State(); !reflect.DeepEqual(got, committed) {
		t.Fatalf("torn tail changed replayed state: %+v", got)
	}
}

func TestLedgerCorruptionBeforeCommitFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendState(t, l, State{IPs: []Pair{{In: 1, Out: 2}}, ASNs: []string{"65001"}})
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a byte inside a committed record's payload: the CRC must
	// catch it and Open must refuse.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	i := bytes.Index(data, []byte("65001"))
	if i < 0 {
		t.Fatalf("test fixture: payload not found in segment")
	}
	data[i] = '9'
	if err := os.WriteFile(seg, data, 0o600); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	if _, err := Open(dir, testFP); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on pre-commit corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestLedgerSaltMismatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendState(t, l, State{IPs: []Pair{{In: 1, Out: 2}}})
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	l.Close()
	if _, err := Open(dir, "some-other-owner"); !errors.Is(err, ErrSaltMismatch) {
		t.Fatalf("Open under wrong salt fp: err = %v, want ErrSaltMismatch", err)
	}
}

func TestLedgerMultiSessionOrderStable(t *testing.T) {
	dir := t.TempDir()
	// Three sessions, each appending a batch; insertion order across
	// sessions must replay exactly.
	var want State
	seenIP := map[uint32]bool{}
	seenStr := map[string]bool{}
	for sess := 0; sess < 3; sess++ {
		l, err := Open(dir, testFP)
		if err != nil {
			t.Fatalf("Open session %d: %v", sess, err)
		}
		for i := 0; i < 5; i++ {
			in := uint32(sess*100 + i)
			rec := Record{T: TIP, In: in, Out: in ^ 0xffffffff}
			if err := l.Append(rec); err != nil {
				t.Fatalf("Append: %v", err)
			}
			want.apply(rec, seenIP, seenStr)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("final Open: %v", err)
	}
	defer l.Close()
	if got := l.State(); !reflect.DeepEqual(got.IPs, want.IPs) {
		t.Fatalf("cross-session replay order:\n got %v\nwant %v", got.IPs, want.IPs)
	}
}

func TestLedgerCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := sampleState()
	appendState(t, l, want)
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Re-append the same records many times (pure dead weight), then
	// force compaction.
	for i := 0; i < 10; i++ {
		appendState(t, l, want)
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("post-compact segments = %d, want 1", n)
	}
	if got := l.State(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compact State = %+v, want %+v", got, want)
	}
	// Uncommitted appends survive compaction (still uncommitted).
	if err := l.Append(Record{T: TWord, V: "late"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("post-compact Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := l2.State()
	if !reflect.DeepEqual(got.IPs, want.IPs) {
		t.Fatalf("compacted IPs = %v, want %v", got.IPs, want.IPs)
	}
	wantWords := append(append([]string(nil), want.Words...), "late")
	if !reflect.DeepEqual(got.Words, wantWords) {
		t.Fatalf("compacted Words = %v, want %v", got.Words, wantWords)
	}
}

func TestLedgerAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.compactFloor = 8 // shrink the churn floor for the test
	// A tiny live state with heavy duplicate traffic crosses the
	// threshold and compacts on Commit.
	for i := 0; i < 20; i++ {
		if err := l.Append(Record{T: TIP, In: 1, Out: 2}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("auto-compaction did not run: segments = %d", n)
	}
	if got := l.State(); len(got.IPs) != 1 {
		t.Fatalf("live state after auto-compaction: %+v", got)
	}
	l.Close()
}

func TestEncodeDecodeState(t *testing.T) {
	want := sampleState()
	blob, err := EncodeState(&want, testFP)
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	if !IsStateBlob(blob) {
		t.Fatalf("IsStateBlob rejected an EncodeState blob")
	}
	got, fp, err := DecodeState(blob)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if fp != testFP {
		t.Fatalf("decoded salt fp = %q, want %q", fp, testFP)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded state = %+v, want %+v", got, want)
	}

	// Truncated blob (no commit reached): decodes empty, not garbage.
	cut := blob[:len(blob)/2]
	for len(cut) > 0 && cut[len(cut)-1] != '\n' {
		cut = cut[:len(cut)-1]
	}
	st, _, err := DecodeState(cut)
	if err != nil {
		t.Fatalf("DecodeState(truncated): %v", err)
	}
	if !st.Empty() {
		t.Fatalf("truncated blob decoded non-empty state: %+v", st)
	}

	// Foreign bytes are rejected.
	if _, _, err := DecodeState([]byte("ipa1\x00legacy")); !errors.Is(err, ErrSchema) {
		t.Fatalf("DecodeState(foreign) err = %v, want ErrSchema", err)
	}
	if IsStateBlob([]byte("ipa1\x00legacy")) {
		t.Fatalf("IsStateBlob accepted a legacy blob")
	}
}

func TestDecodeStateCorruption(t *testing.T) {
	want := sampleState()
	blob, err := EncodeState(&want, testFP)
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	s := string(blob)
	i := strings.Index(s, "chicago")
	if i < 0 {
		t.Fatalf("fixture: payload not found")
	}
	bad := []byte(s[:i] + "Xhicago" + s[i+len("chicago"):])
	if _, _, err := DecodeState(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeState(corrupt) err = %v, want ErrCorrupt", err)
	}
}

func TestCrashHookBetweenAppendAndCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	committed := State{IPs: []Pair{{In: 1, Out: 2}}}
	appendState(t, l, committed)
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// Arm the crash hook to panic between append and the commit record:
	// the pre-crash flush reaches disk (worst case), but no commit does.
	SetCrashHook(func(event string) {
		if event == "commit" {
			panic("simulated crash before commit record")
		}
	})
	defer SetCrashHook(nil)
	func() {
		defer func() { recover() }()
		_ = l.Append(Record{T: TIP, In: 99, Out: 100})
		_ = l.Commit()
	}()
	SetCrashHook(nil)
	// Simulate process death: the buffered writer may or may not have
	// flushed; force the worst case by flushing what the dying process
	// had written.
	l.w.Flush()
	l.f.Close()

	l2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("post-crash Open: %v", err)
	}
	defer l2.Close()
	if got := l2.State(); !reflect.DeepEqual(got, committed) {
		t.Fatalf("post-crash replay = %+v, want %+v", got, committed)
	}
}

// TestCompactionRacesAppendCommit drives Compact concurrently against
// Append/Commit traffic, for the race detector as much as for the
// assertions: writer goroutines commit distinct IP pairs while a
// compactor goroutine hammers Compact and the lowered churn floor lets
// Commit's automatic compaction fire too. Every committed pair must be
// present afterwards and again after a fresh replay — compaction may
// reshape segments, never state.
func TestCompactionRacesAppendCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.compactFloor = 1 // compact eagerly: maximize interleavings

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				in := uint32(w+1)<<16 | uint32(i+1)
				if err := l.Append(Record{T: TIP, In: in, Out: ^in}); err != nil {
					t.Errorf("writer %d: Append: %v", w, err)
					return
				}
				if err := l.Commit(); err != nil {
					t.Errorf("writer %d: Commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	compacted := make(chan int, 1)
	go func() {
		// Compact before checking stop: under heavy scheduler load the
		// writers can all finish before this goroutine first runs, and
		// the test must still observe at least one compaction.
		n := 0
		for {
			if err := l.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				compacted <- n
				return
			}
			n++
			select {
			case <-stop:
				compacted <- n
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	if n := <-compacted; n == 0 {
		t.Fatal("compactor never ran")
	}
	if t.Failed() {
		t.FailNow()
	}

	want := make(map[uint32]uint32, writers*perWriter)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			in := uint32(w+1)<<16 | uint32(i+1)
			want[in] = ^in
		}
	}
	check := func(label string, s State) {
		t.Helper()
		got := make(map[uint32]uint32, len(s.IPs))
		for _, p := range s.IPs {
			got[p.In] = p.Out
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: %d pairs survived, want %d", label, len(got), len(want))
		}
	}
	check("live state", l.State())
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("reopen after racing compaction: %v", err)
	}
	defer l2.Close()
	check("replayed state", l2.State())
}
