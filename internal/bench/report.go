package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Schema identifies the benchmark report layout. Version it forward
// (v2, ...) on any incompatible change; Decode rejects foreign schemas
// so a stale tool can never mis-score a newer report.
const Schema = "confanon.bench/v1"

// Report is one benchmark run: the corpus it measured and the scores of
// every policy swept over it. All scores are deterministic functions of
// (Seed, corpus shape, policy); only Throughput varies between runs.
type Report struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	// TopK is the k of the top-k re-identification scores.
	TopK     int            `json:"top_k"`
	Corpus   CorpusStats    `json:"corpus"`
	Policies []PolicyReport `json:"policies"`
}

// CorpusStats describes the generated population.
type CorpusStats struct {
	Networks     int `json:"networks"`
	Routers      int `json:"routers"`
	Files        int `json:"files"`
	Lines        int `json:"lines"`
	InterASLinks int `json:"inter_as_links"`
}

// PolicyReport carries one policy's scores.
type PolicyReport struct {
	Name string `json:"name"`
	// Fingerprint canonically records the policy knobs that produced
	// these scores; baseline diffs treat a change as drift.
	Fingerprint string        `json:"fingerprint"`
	Privacy     PrivacyScores `json:"privacy"`
	Utility     UtilityScores `json:"utility"`
	Throughput  Throughput    `json:"throughput"`
}

// PrivacyScores quantifies the §6 attacks over the population. All
// percentages are 0..100; higher re-identification means the anonymized
// corpora are easier to match back to their networks (worse privacy).
type PrivacyScores struct {
	// Fingerprint survival: the fraction of networks whose subnet-size /
	// peering-structure fingerprint is bit-identical across
	// anonymization — the structure preservation the attacks exploit.
	SubnetMatchPct  float64 `json:"subnet_match_pct"`
	PeeringMatchPct float64 `json:"peering_match_pct"`
	// Re-identification accuracy of a distance-matching attacker, per
	// fingerprint and for both combined (realistic attacker).
	SubnetTop1Pct   float64 `json:"subnet_top1_pct"`
	SubnetTopKPct   float64 `json:"subnet_topk_pct"`
	PeeringTop1Pct  float64 `json:"peering_top1_pct"`
	PeeringTopKPct  float64 `json:"peering_topk_pct"`
	CombinedTop1Pct float64 `json:"combined_top1_pct"`
	CombinedTopKPct float64 `json:"combined_topk_pct"`
	// Population uniqueness of the anonymized fingerprints.
	SubnetEntropyBits  float64 `json:"subnet_entropy_bits"`
	SubnetUniquePct    float64 `json:"subnet_unique_pct"`
	PeeringEntropyBits float64 `json:"peering_entropy_bits"`
	PeeringUniquePct   float64 `json:"peering_unique_pct"`
	// IdentityLeakPct is the fraction of networks whose anonymized
	// output still contains any planted identity token (company name,
	// contact address, peer names). Must be 0 for any production policy.
	IdentityLeakPct float64 `json:"identity_leak_pct"`
}

// UtilityScores quantifies §5: does the routing design survive?
type UtilityScores struct {
	// DesignEquivPct is the fraction of networks whose extracted
	// routing-design signature is identical pre- and post-anonymization
	// (suite 2) — the headline structural-equivalence score.
	DesignEquivPct float64 `json:"design_equiv_pct"`
	// CharacteristicsCleanPct is the fraction of networks with zero
	// independent-characteristic mismatches (suite 1).
	CharacteristicsCleanPct float64 `json:"characteristics_clean_pct"`
	// CharacteristicMismatches totals the suite-1 mismatch lines across
	// the population (diagnostic; 0 when CharacteristicsCleanPct=100).
	CharacteristicMismatches int `json:"characteristic_mismatches"`
}

// Throughput is the run's performance — machine-dependent, so baseline
// diffs only warn on it, never fail.
type Throughput struct {
	Seconds     float64 `json:"seconds"`
	InputLines  int     `json:"input_lines"`
	LinesPerSec float64 `json:"lines_per_sec"`
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode parses a report, rejecting unknown schemas — including newer
// versions of this one, which a current tool must not silently
// mis-score.
func Decode(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("bench report: unrecognized schema %q (want %s)", rep.Schema, Schema)
	}
	return &rep, nil
}

// Policy returns the named policy report, or nil.
func (r *Report) Policy(name string) *PolicyReport {
	for i := range r.Policies {
		if r.Policies[i].Name == name {
			return &r.Policies[i]
		}
	}
	return nil
}

// round6 stabilizes scores for baseline comparison: six decimals is far
// below any threshold the gate uses but above float formatting jitter.
func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// pct renders a fraction as a rounded percentage.
func pct(f float64) float64 { return round6(f * 100) }
