package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"confanon"
	"confanon/internal/config"
	"confanon/internal/fingerprint"
	"confanon/internal/netgen"
	"confanon/internal/validate"
)

// Options configures one benchmark run.
type Options struct {
	Seed     int64
	Routers  int // total router budget (0 = netgen default)
	Networks int // AS count (0 = derived from Routers)
	Policies []Policy
	TopK     int // k for top-k re-identification (0 = 5)
	// Progress, when set, receives one line per completed stage (corpus
	// generation, each policy) for CLI feedback on long runs.
	Progress func(format string, args ...interface{})
}

// NetworkArtifacts bundles one network's pre/post state for scoring.
// The privacy and utility suites run over a slice of these — the
// benchmark builds them from generated corpora, and examples/attack
// builds them from its own population, so both share one scoring
// implementation.
type NetworkArtifacts struct {
	// Pre and Post are the parsed configurations before and after
	// anonymization. Post may be smaller when a strict policy
	// quarantined files.
	Pre  []*config.Config
	Post []*config.Config
	// PostText is the anonymized rendered output, scanned for Identity.
	PostText []string
	// Identity lists the planted identity tokens that must not survive
	// anonymization (empty disables the leak scan for this network).
	Identity []string
}

// Run generates the corpus and sweeps every policy over it.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	if len(opts.Policies) == 0 {
		opts.Policies = DefaultPolicies()
	}
	progress := opts.Progress
	if progress == nil {
		progress = func(string, ...interface{}) {}
	}

	corpus := netgen.GenerateCorpus(netgen.CorpusParams{
		Seed: opts.Seed, Routers: opts.Routers, Networks: opts.Networks,
	})
	rep := &Report{Schema: Schema, Seed: opts.Seed, TopK: opts.TopK}
	rep.Corpus.Networks = len(corpus.Networks)
	rep.Corpus.Routers = corpus.TotalRouters()
	rep.Corpus.InterASLinks = len(corpus.Links)

	// Render and parse each network once; every policy reuses this.
	type netState struct {
		files    map[string]string
		names    []string // sorted file names
		pre      []*config.Config
		identity []string
		salt     []byte
		lines    int
	}
	states := make([]*netState, len(corpus.Networks))
	for i, n := range corpus.Networks {
		st := &netState{files: n.RenderAll(), salt: []byte(n.Salt)}
		for name := range st.files {
			st.names = append(st.names, name)
		}
		sort.Strings(st.names)
		st.pre = validate.ParseAll(st.files)
		st.identity = corpus.IdentityTokens(i)
		for _, text := range st.files {
			st.lines += strings.Count(text, "\n")
		}
		rep.Corpus.Files += len(st.files)
		rep.Corpus.Lines += st.lines
		states[i] = st
	}
	progress("corpus: %d networks, %d routers, %d files, %d lines, %d inter-AS links",
		rep.Corpus.Networks, rep.Corpus.Routers, rep.Corpus.Files, rep.Corpus.Lines,
		rep.Corpus.InterASLinks)

	for _, pol := range opts.Policies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		workers := pol.Workers
		if workers < 1 {
			workers = 1
		}
		arts := make([]NetworkArtifacts, len(states))
		var elapsed time.Duration
		for i, st := range states {
			aOpts := confanon.Options{
				Salt:         st.salt,
				StatelessIP:  pol.StatelessIP,
				Strict:       pol.Strict,
				KeepComments: pol.KeepComments,
			}
			start := time.Now()
			res, err := confanon.ParallelCorpusContext(ctx, aOpts, st.files, workers)
			elapsed += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("policy %s network %d: %w", pol.Name, i, err)
			}
			out := res.Outputs()
			arts[i] = NetworkArtifacts{
				Pre:      st.pre,
				Post:     validate.ParseAll(out),
				Identity: st.identity,
			}
			for _, name := range st.names {
				if text, ok := out[name]; ok {
					arts[i].PostText = append(arts[i].PostText, text)
				}
			}
		}
		pr := PolicyReport{
			Name:        pol.Name,
			Fingerprint: pol.Fingerprint(),
			Privacy:     PrivacyOf(arts, opts.TopK),
			Utility:     UtilityOf(arts),
		}
		pr.Throughput.Seconds = elapsed.Seconds()
		pr.Throughput.InputLines = rep.Corpus.Lines
		if s := elapsed.Seconds(); s > 0 {
			pr.Throughput.LinesPerSec = float64(rep.Corpus.Lines) / s
		}
		rep.Policies = append(rep.Policies, pr)
		progress("policy %-16s privacy: subnet top1 %.1f%% combined top1 %.1f%% leak %.1f%% | utility: design %.1f%% | %.0f lines/s",
			pol.Name, pr.Privacy.SubnetTop1Pct, pr.Privacy.CombinedTop1Pct,
			pr.Privacy.IdentityLeakPct, pr.Utility.DesignEquivPct, pr.Throughput.LinesPerSec)
	}
	return rep, nil
}

// PrivacyOf runs the generalized §6 attack suite over a population: the
// attacker holds the true fingerprints of every candidate network
// (externally measurable ground truth) and matches each anonymized
// corpus against them by fingerprint distance.
func PrivacyOf(nets []NetworkArtifacts, topK int) PrivacyScores {
	n := len(nets)
	var s PrivacyScores
	if n == 0 {
		return s
	}
	preSub := make([]fingerprint.Subnet, n)
	postSub := make([]fingerprint.Subnet, n)
	prePeer := make([]fingerprint.Peering, n)
	postPeer := make([]fingerprint.Peering, n)
	preSubKeys := make([]string, n)
	postSubKeys := make([]string, n)
	prePeerKeys := make([]string, n)
	postPeerKeys := make([]string, n)
	for i, a := range nets {
		preSub[i] = fingerprint.SubnetOf(a.Pre)
		postSub[i] = fingerprint.SubnetOf(a.Post)
		prePeer[i] = fingerprint.PeeringOf(a.Pre)
		postPeer[i] = fingerprint.PeeringOf(a.Post)
		preSubKeys[i] = preSub[i].Key()
		postSubKeys[i] = postSub[i].Key()
		prePeerKeys[i] = prePeer[i].Key()
		postPeerKeys[i] = postPeer[i].Key()
	}

	s.SubnetMatchPct = pct(fingerprint.MatchRate(preSubKeys, postSubKeys))
	s.PeeringMatchPct = pct(fingerprint.MatchRate(prePeerKeys, postPeerKeys))

	subDist := func(j, i int) float64 { return fingerprint.SubnetDistance(postSub[j], preSub[i]) }
	peerDist := func(j, i int) float64 { return fingerprint.PeeringDistance(postPeer[j], prePeer[i]) }
	combDist := func(j, i int) float64 { return subDist(j, i) + peerDist(j, i) }

	sub := fingerprint.Reidentify(subDist, n, topK)
	peer := fingerprint.Reidentify(peerDist, n, topK)
	comb := fingerprint.Reidentify(combDist, n, topK)
	s.SubnetTop1Pct, s.SubnetTopKPct = pct(sub.Top1), pct(sub.TopK)
	s.PeeringTop1Pct, s.PeeringTopKPct = pct(peer.Top1), pct(peer.TopK)
	s.CombinedTop1Pct, s.CombinedTopKPct = pct(comb.Top1), pct(comb.TopK)

	subU := fingerprint.Analyze(postSubKeys)
	peerU := fingerprint.Analyze(postPeerKeys)
	s.SubnetEntropyBits = round6(subU.EntropyBits)
	s.SubnetUniquePct = pct(float64(subU.Unique) / float64(n))
	s.PeeringEntropyBits = round6(peerU.EntropyBits)
	s.PeeringUniquePct = pct(float64(peerU.Unique) / float64(n))

	leaked := 0
	for _, a := range nets {
		if identityLeaks(a.PostText, a.Identity) {
			leaked++
		}
	}
	s.IdentityLeakPct = pct(float64(leaked) / float64(n))
	return s
}

// identityLeaks reports whether any identity token survives in the
// anonymized text.
func identityLeaks(texts, tokens []string) bool {
	for _, text := range texts {
		for _, tok := range tokens {
			if tok != "" && strings.Contains(text, tok) {
				return true
			}
		}
	}
	return false
}

// UtilityOf runs the §5 extraction-equivalence suite over a population.
func UtilityOf(nets []NetworkArtifacts) UtilityScores {
	var s UtilityScores
	n := len(nets)
	if n == 0 {
		return s
	}
	equal, clean := 0, 0
	for _, a := range nets {
		r2 := validate.Suite2(a.Pre, a.Post)
		if r2.OK() {
			equal++
		}
		diffs := validate.Suite1(a.Pre, a.Post)
		if len(diffs) == 0 {
			clean++
		}
		s.CharacteristicMismatches += len(diffs)
	}
	s.DesignEquivPct = pct(float64(equal) / float64(n))
	s.CharacteristicsCleanPct = pct(float64(clean) / float64(n))
	return s
}
