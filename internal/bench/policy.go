// Package bench is the corpus-scale adversarial benchmark harness: it
// generates a deterministic multi-AS population (internal/netgen), runs
// it through configurable anonymization policies, and scores each
// policy on the two axes the paper argues must be measured together —
// privacy (the §6 fingerprint attacks, as re-identification scores)
// and utility (the §5 routing-design extraction, as structural
// equivalence). The scores land in a versioned confanon.bench/v1
// report that conftrace diffs against a committed baseline, so a rule
// change that silently weakens either axis fails CI.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"confanon"
	"confanon/internal/rulepack"
)

// Policy is one anonymization configuration under measurement.
type Policy struct {
	// Name identifies the policy in reports and baselines.
	Name string `json:"name"`
	// StatelessIP selects the Crypto-PAn scheme: salt-only mapping, no
	// shared tree — the §4.3 trade-off that sacrifices class and
	// subnet-address preservation (a deliberate utility reduction).
	StatelessIP bool `json:"stateless_ip"`
	// Strict fails closed: files whose leak report has confirmed
	// findings are quarantined instead of published.
	Strict bool `json:"strict"`
	// KeepComments retains comment lines — a deliberately weakened
	// measurement-only mode; the identity-leak score exists to catch it.
	KeepComments bool `json:"keep_comments"`
	// Workers is the anonymization worker count (0 or 1 = serial).
	Workers int `json:"workers"`
}

// Fingerprint canonically serializes the policy's knobs plus the
// identity of every rule pack the engine compiles under it (today: the
// canonical built-in pack — bench policies load no user packs). A
// baseline comparison treats a changed fingerprint under an unchanged
// name as drift: either the policy was silently redefined or the rule
// inventory itself changed, and both must force a deliberate baseline
// refresh.
func (p Policy) Fingerprint() string {
	packs := rulepack.FingerprintsOf([]rulepack.Meta{confanon.BuiltinRulePack().Meta()})
	return fmt.Sprintf("stateless_ip=%v strict=%v keep_comments=%v workers=%d packs=%s",
		p.StatelessIP, p.Strict, p.KeepComments, p.Workers, packs)
}

// defaultPolicies is the registry the CLI selects from. The set pins
// the contracts the repo already claims elsewhere: shaped-parallel must
// score identically to shaped (parallel runs are byte-identical), and
// stateless must show its documented utility cost.
var defaultPolicies = []Policy{
	{Name: "shaped", Workers: 1},
	{Name: "shaped-parallel", Workers: 4},
	{Name: "shaped-strict", Strict: true, Workers: 1},
	{Name: "stateless", StatelessIP: true, Workers: 1},
}

// DefaultPolicies returns the standard policy sweep (a copy).
func DefaultPolicies() []Policy {
	out := make([]Policy, len(defaultPolicies))
	copy(out, defaultPolicies)
	return out
}

// SelectPolicies resolves a comma-separated list of registry names
// ("all" or empty = every default policy).
func SelectPolicies(spec string) ([]Policy, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return DefaultPolicies(), nil
	}
	byName := make(map[string]Policy, len(defaultPolicies))
	var known []string
	for _, p := range defaultPolicies {
		byName[p.Name] = p
		known = append(known, p.Name)
	}
	sort.Strings(known)
	var out []Policy
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown policy %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies selected from %q", spec)
	}
	return out, nil
}
