package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"confanon"
	"confanon/internal/rulepack"
)

// TestPolicyFingerprintTracksPackContent: the policy fingerprint embeds
// the rule-pack inventory, and editing a pack's content — not just its
// name or version — moves it. This is what lets conftrace's bench gate
// catch a silently edited inventory as fingerprint drift.
func TestPolicyFingerprintTracksPackContent(t *testing.T) {
	p := Policy{Name: "shaped", Workers: 1}
	fp := p.Fingerprint()
	builtin := confanon.BuiltinRulePack().Meta()
	wantPacks := "packs=" + rulepack.FingerprintsOf([]rulepack.Meta{builtin})
	if !strings.Contains(fp, wantPacks) {
		t.Fatalf("fingerprint %q does not embed the builtin pack identity %q", fp, wantPacks)
	}
	if !strings.Contains(fp, strings.TrimPrefix(builtin.Fingerprint, "sha256:")[:12]) {
		t.Errorf("fingerprint %q does not carry the pack content digest", fp)
	}

	// Edit one rule's content (a doc change is enough), re-parse, and
	// the computed content fingerprint — and with it the packs=
	// component of every policy fingerprint — must move, while name and
	// version stay put. Work on a JSON round-tripped clone so the shared
	// builtin pack is never mutated.
	src := confanon.BuiltinRulePack()
	enc, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var clone rulepack.Pack
	if err := json.Unmarshal(enc, &clone); err != nil {
		t.Fatal(err)
	}
	if len(clone.Rules) == 0 {
		t.Fatal("builtin pack has no rules")
	}
	clone.Rules[0].Doc = "changed for the drift test"
	clone.Fingerprint = "" // recompute rather than mismatch
	reenc, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	edited, err := rulepack.Parse(reenc)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Fingerprint == builtin.Fingerprint {
		t.Error("editing a rule doc did not change the pack content fingerprint")
	}
	if edited.Name != builtin.Name || edited.Version != builtin.Version {
		t.Error("edit changed identity fields it should not have")
	}
	if rulepack.FingerprintsOf([]rulepack.Meta{edited.Meta()}) ==
		rulepack.FingerprintsOf([]rulepack.Meta{builtin}) {
		t.Error("policy packs= component does not track pack content")
	}
}
