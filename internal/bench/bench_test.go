package bench

import (
	"context"
	"reflect"
	"testing"
)

// runSmall is the shared small-corpus run (kept modest: the full CI
// gauntlet runs this package under -race).
func runSmall(t *testing.T, policies []Policy) *Report {
	t.Helper()
	rep, err := Run(context.Background(), Options{
		Seed: 1, Routers: 60, Networks: 4, Policies: policies,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func zeroThroughput(rep *Report) {
	for i := range rep.Policies {
		rep.Policies[i].Throughput = Throughput{}
	}
}

func TestRunScoresDefaultPolicies(t *testing.T) {
	rep := runSmall(t, nil)
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Corpus.Networks != 4 || rep.Corpus.Routers < 40 || rep.Corpus.Lines == 0 {
		t.Fatalf("corpus stats implausible: %+v", rep.Corpus)
	}
	if rep.Corpus.InterASLinks < rep.Corpus.Networks-1 {
		t.Fatalf("inter-AS graph not connected: %+v", rep.Corpus)
	}
	shaped := rep.Policy("shaped")
	if shaped == nil {
		t.Fatal("no shaped policy in default sweep")
	}
	// The production policy must preserve the routing design everywhere
	// and leak no identity — the paper's §5 claim as a score.
	if shaped.Utility.DesignEquivPct != 100 {
		t.Errorf("shaped design equivalence %.1f%%, want 100", shaped.Utility.DesignEquivPct)
	}
	if shaped.Utility.CharacteristicsCleanPct != 100 {
		t.Errorf("shaped characteristics clean %.1f%%, want 100", shaped.Utility.CharacteristicsCleanPct)
	}
	if shaped.Privacy.IdentityLeakPct != 0 {
		t.Errorf("shaped identity leak %.1f%%, want 0", shaped.Privacy.IdentityLeakPct)
	}
	// And the fingerprints must survive exactly (the attack premise):
	// structure preservation means the attacker's measure is conserved.
	if shaped.Privacy.SubnetMatchPct != 100 || shaped.Privacy.PeeringMatchPct != 100 {
		t.Errorf("fingerprint survival subnet=%.1f peering=%.1f, want 100/100",
			shaped.Privacy.SubnetMatchPct, shaped.Privacy.PeeringMatchPct)
	}
	// Parallel anonymization is byte-identical to serial, so its scores
	// must be exactly the shaped scores.
	par := rep.Policy("shaped-parallel")
	if par == nil {
		t.Fatal("no shaped-parallel policy")
	}
	if !reflect.DeepEqual(par.Privacy, shaped.Privacy) || !reflect.DeepEqual(par.Utility, shaped.Utility) {
		t.Errorf("parallel scores differ from serial:\nserial   %+v %+v\nparallel %+v %+v",
			shaped.Privacy, shaped.Utility, par.Privacy, par.Utility)
	}
}

// TestWeakenedPoliciesMoveTheRightAxis pins the harness's sensitivity:
// each deliberate weakening must move its axis in the expected
// direction, or the CI gate would be measuring noise.
func TestWeakenedPoliciesMoveTheRightAxis(t *testing.T) {
	rep := runSmall(t, []Policy{
		{Name: "shaped", Workers: 1},
		{Name: "stateless", StatelessIP: true, Workers: 1},
		{Name: "keep-comments", KeepComments: true, Workers: 1},
	})
	shaped, stateless, kept := rep.Policy("shaped"), rep.Policy("stateless"), rep.Policy("keep-comments")

	// Disabling the shaped tree sacrifices class/subnet-address
	// preservation (§4.3): routing-design extraction must degrade.
	if stateless.Utility.DesignEquivPct >= shaped.Utility.DesignEquivPct {
		t.Errorf("stateless design equivalence %.1f%% not below shaped %.1f%%",
			stateless.Utility.DesignEquivPct, shaped.Utility.DesignEquivPct)
	}
	// Keeping comments leaks identity: the privacy axis must flag it.
	if kept.Privacy.IdentityLeakPct <= shaped.Privacy.IdentityLeakPct {
		t.Errorf("keep-comments identity leak %.1f%% not above shaped %.1f%%",
			kept.Privacy.IdentityLeakPct, shaped.Privacy.IdentityLeakPct)
	}
}

// TestScoreDeterminism: two runs with the same seed produce identical
// reports apart from throughput — the property the committed baseline
// and the CI drift gate rely on.
func TestScoreDeterminism(t *testing.T) {
	r1 := runSmall(t, []Policy{{Name: "shaped", Workers: 1}, {Name: "stateless", StatelessIP: true, Workers: 1}})
	r2 := runSmall(t, []Policy{{Name: "shaped", Workers: 1}, {Name: "stateless", StatelessIP: true, Workers: 1}})
	zeroThroughput(r1)
	zeroThroughput(r2)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed reports differ:\n%+v\n%+v", r1, r2)
	}
	// A different seed must actually change the corpus.
	r3, err := Run(context.Background(), Options{
		Seed: 2, Routers: 60, Networks: 4, Policies: []Policy{{Name: "shaped", Workers: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Corpus, r3.Corpus) {
		t.Error("different seeds generated identical corpus stats")
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Seed: 1, Routers: 30, Networks: 2}); err == nil {
		t.Fatal("cancelled context did not stop the run")
	}
}

func TestSelectPolicies(t *testing.T) {
	all, err := SelectPolicies("all")
	if err != nil || len(all) != len(DefaultPolicies()) {
		t.Fatalf("all: %v %d", err, len(all))
	}
	two, err := SelectPolicies("shaped, stateless")
	if err != nil || len(two) != 2 || two[0].Name != "shaped" || !two[1].StatelessIP {
		t.Fatalf("subset: %v %+v", err, two)
	}
	if _, err := SelectPolicies("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := SelectPolicies(","); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestSuitesOnEmptyPopulation(t *testing.T) {
	p := PrivacyOf(nil, 5)
	u := UtilityOf(nil)
	if p.SubnetTop1Pct != 0 || u.DesignEquivPct != 0 {
		t.Errorf("empty population scored: %+v %+v", p, u)
	}
}
