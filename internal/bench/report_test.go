package bench

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// sampleReport builds a small fully-populated report without running
// the harness.
func sampleReport() *Report {
	return &Report{
		Schema: Schema,
		Seed:   7,
		TopK:   5,
		Corpus: CorpusStats{Networks: 4, Routers: 60, Files: 60, Lines: 9000, InterASLinks: 5},
		Policies: []PolicyReport{
			{
				Name:        "shaped",
				Fingerprint: Policy{Name: "shaped", Workers: 1}.Fingerprint(),
				Privacy: PrivacyScores{
					SubnetMatchPct: 100, PeeringMatchPct: 100,
					SubnetTop1Pct: 100, SubnetTopKPct: 100,
					PeeringTop1Pct: 75, PeeringTopKPct: 100,
					CombinedTop1Pct: 100, CombinedTopKPct: 100,
					SubnetEntropyBits: 2, SubnetUniquePct: 100,
					PeeringEntropyBits: 1.5, PeeringUniquePct: 75,
				},
				Utility:    UtilityScores{DesignEquivPct: 100, CharacteristicsCleanPct: 100},
				Throughput: Throughput{Seconds: 1.5, InputLines: 9000, LinesPerSec: 6000},
			},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		rep  *Report
	}{
		{"sample", sampleReport()},
		{"empty policies", &Report{Schema: Schema, Seed: 1, TopK: 5}},
	} {
		var buf bytes.Buffer
		if err := tc.rep.Encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, tc.rep) {
			t.Errorf("%s: round trip changed the report:\nin:  %+v\nout: %+v", tc.name, tc.rep, got)
		}
	}
}

func TestDecodeRejectsForeignSchemas(t *testing.T) {
	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"future version", `{"schema":"confanon.bench/v2","seed":1}`, "unrecognized schema"},
		{"other artifact", `{"schema":"confanon.run_report/v1"}`, "unrecognized schema"},
		{"no schema", `{"seed":1}`, "unrecognized schema"},
		{"not json", `nonsense`, "bench report"},
		{"empty", ``, "bench report"},
	} {
		_, err := Decode(strings.NewReader(tc.body))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestPolicyLookup(t *testing.T) {
	rep := sampleReport()
	if rep.Policy("shaped") == nil {
		t.Error("existing policy not found")
	}
	if rep.Policy("absent") != nil {
		t.Error("phantom policy found")
	}
}

// TestEncodedReportDeterministic: two same-seed harness runs encode to
// identical bytes once throughput is zeroed — the exact byte-level
// property that lets testdata/baseline_bench.json be regenerated
// reproducibly on any machine.
func TestEncodedReportDeterministic(t *testing.T) {
	opts := Options{Seed: 3, Routers: 40, Networks: 3,
		Policies: []Policy{{Name: "shaped", Workers: 1}}}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		rep, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		zeroThroughput(rep)
		if err := rep.Encode(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same-seed encodings differ:\n%s\n---\n%s", bufs[0].String(), bufs[1].String())
	}
}
