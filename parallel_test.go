package confanon

import (
	"fmt"
	"runtime"
	"testing"

	"confanon/internal/netgen"
)

func TestParallelCorpusMatchesSequential(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 1200, Kind: netgen.Backbone, Routers: 20})
	files := n.RenderAll()
	opts := Options{Salt: []byte(n.Salt), StatelessIP: true}

	seq := New(opts)
	want := make(map[string]string, len(files))
	for name, text := range files {
		want[name] = seq.File(text)
	}
	got, stats := ParallelCorpus(opts, files, 4)
	if len(got) != len(want) {
		t.Fatalf("file count %d != %d", len(got), len(want))
	}
	for name := range want {
		if got[name] != want[name] {
			t.Fatalf("parallel output differs for %s", name)
		}
	}
	if stats.Files != int64(len(files)) || stats.Lines == 0 {
		t.Errorf("merged stats wrong: %+v", stats)
	}
}

func TestParallelCorpusCrossWorkerConsistency(t *testing.T) {
	// The same address appearing in many files must map identically even
	// when different workers process the files.
	files := make(map[string]string)
	for i := 0; i < 16; i++ {
		files[string(rune('a'+i))] = "interface Ethernet0\n ip address 12.9.9.9 255.255.255.0\n"
	}
	out, _ := ParallelCorpus(Options{Salt: []byte("p")}, files, 8)
	var first string
	for _, text := range out {
		if first == "" {
			first = text
			continue
		}
		if text != first {
			t.Fatal("same input anonymized differently across workers")
		}
	}
}

func TestParallelCorpusValidates(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 1201, Kind: netgen.Enterprise, Routers: 16})
	files := n.RenderAll()
	post, _ := ParallelCorpus(Options{Salt: []byte(n.Salt)}, files, runtime.NumCPU())
	rep := Validate(files, post)
	// Suite 1 must pass; suite 2 may be affected only if subnet shaping
	// mattered — the crypto scheme still preserves prefixes, which is
	// what the adjacency extraction depends on.
	if len(rep.Suite1) != 0 {
		t.Errorf("suite 1 failed under stateless scheme: %v", rep.Suite1)
	}
	if !rep.Suite2.OK() {
		t.Errorf("suite 2 failed under stateless scheme:\npre:  %s\npost: %s",
			rep.Suite2.PreSummary, rep.Suite2.PostSummary)
	}
}

func BenchmarkParallelCorpus(b *testing.B) {
	n := netgen.Generate(netgen.Params{Seed: 1202, Kind: netgen.Backbone, Routers: 48})
	files := n.RenderAll()
	lines := n.TotalLines()
	opts := Options{Salt: []byte(n.Salt)}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelCorpus(opts, files, workers)
			}
			b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}
