package confanon

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"confanon/internal/netgen"
)

func TestParallelCorpusMatchesSequential(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 1200, Kind: netgen.Backbone, Routers: 20})
	files := n.RenderAll()
	opts := Options{Salt: []byte(n.Salt), StatelessIP: true}

	seq := New(opts)
	want := make(map[string]string, len(files))
	for name, text := range files {
		want[name] = seq.File(text)
	}
	got, stats := ParallelCorpus(opts, files, 4)
	if len(got) != len(want) {
		t.Fatalf("file count %d != %d", len(got), len(want))
	}
	for name := range want {
		if got[name] != want[name] {
			t.Fatalf("parallel output differs for %s", name)
		}
	}
	if stats.Files != int64(len(files)) || stats.Lines == 0 {
		t.Errorf("merged stats wrong: %+v", stats)
	}
}

func TestParallelCorpusCrossWorkerConsistency(t *testing.T) {
	// The same address appearing in many files must map identically even
	// when different workers process the files.
	files := make(map[string]string)
	for i := 0; i < 16; i++ {
		files[string(rune('a'+i))] = "interface Ethernet0\n ip address 12.9.9.9 255.255.255.0\n"
	}
	out, _ := ParallelCorpus(Options{Salt: []byte("p")}, files, 8)
	var first string
	for _, text := range out {
		if first == "" {
			first = text
			continue
		}
		if text != first {
			t.Fatal("same input anonymized differently across workers")
		}
	}
}

func TestParallelCorpusValidates(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 1201, Kind: netgen.Enterprise, Routers: 16})
	files := n.RenderAll()
	// Default options: the shaped tree, running through the parallel
	// census/replay pipeline.
	post, _ := ParallelCorpus(Options{Salt: []byte(n.Salt)}, files, runtime.NumCPU())
	rep := Validate(files, post)
	if len(rep.Suite1) != 0 {
		t.Errorf("suite 1 failed under parallel shaped run: %v", rep.Suite1)
	}
	if !rep.Suite2.OK() {
		t.Errorf("suite 2 failed under parallel shaped run:\npre:  %s\npost: %s",
			rep.Suite2.PreSummary, rep.Suite2.PostSummary)
	}
}

// TestParallelShapedByteIdentical is the determinism contract of the
// census/replay pipeline: under the shaped tree — whose mapping depends
// on the order addresses first reach it — a ParallelCorpusContext run
// must be byte-identical to a sequential CorpusContext run at every
// worker count, across repeated runs (goroutine scheduling must not
// matter).
func TestParallelShapedByteIdentical(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 1203, Kind: netgen.Backbone, Routers: 24})
	files := n.RenderAll()
	opts := Options{Salt: []byte(n.Salt)} // shaped tree

	serial, err := New(opts).CorpusContext(context.Background(), files)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Ok() {
		t.Fatalf("serial run not clean: %v", serial.Failed())
	}
	want := serial.Outputs()

	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			res, err := ParallelCorpusContext(context.Background(), opts, files, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Fatalf("workers=%d rep=%d: not clean: %v", workers, rep, res.Failed())
			}
			got := res.Outputs()
			if len(got) != len(want) {
				t.Fatalf("workers=%d rep=%d: file count %d != %d", workers, rep, len(got), len(want))
			}
			for name := range want {
				if got[name] != want[name] {
					t.Fatalf("workers=%d rep=%d: output differs from serial for %s", workers, rep, name)
				}
			}
		}
	}
}

// TestParallelShapedSessionReuse: a warm Session (mapping already
// populated by an earlier corpus) must stay consistent when a second
// corpus runs through the parallel pipeline — the replayed traces land
// as cache hits on the existing entries.
func TestParallelShapedSessionReuse(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 1204, Kind: netgen.Enterprise, Routers: 8})
	files := n.RenderAll()
	opts := Options{Salt: []byte(n.Salt)}

	serial := New(opts)
	if _, err := serial.CorpusContext(context.Background(), files); err != nil {
		t.Fatal(err)
	}
	wantSecond, err := serial.CorpusContext(context.Background(), files)
	if err != nil {
		t.Fatal(err)
	}

	par := New(opts)
	if _, err := par.ParallelCorpusContext(context.Background(), files, 4); err != nil {
		t.Fatal(err)
	}
	gotSecond, err := par.ParallelCorpusContext(context.Background(), files, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name := range wantSecond.Outputs() {
		if gotSecond.Outputs()[name] != wantSecond.Outputs()[name] {
			t.Fatalf("warm-session parallel output differs from serial for %s", name)
		}
	}
}

// BenchmarkParallelCorpus sweeps workers under the stateless scheme
// (mappings are pure functions of the salt; no census needed), the
// parallelization §4.3 attributes to the Xu scheme.
func BenchmarkParallelCorpus(b *testing.B) {
	n := netgen.Generate(netgen.Params{Seed: 1202, Kind: netgen.Backbone, Routers: 48})
	files := n.RenderAll()
	lines := n.TotalLines()
	opts := Options{Salt: []byte(n.Salt), StatelessIP: true}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelCorpus(opts, files, workers)
			}
			b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}

// BenchmarkParallelShapedTree sweeps workers under the default shaped
// tree: the full census → replay → rewrite pipeline, whose output is
// byte-identical to a serial run. Compare against BenchmarkParallelCorpus
// to see what determinism costs (the census roughly doubles per-file
// work, so speedup over serial needs >2 effective cores).
func BenchmarkParallelShapedTree(b *testing.B) {
	n := netgen.Generate(netgen.Params{Seed: 1202, Kind: netgen.Backbone, Routers: 48})
	files := n.RenderAll()
	lines := n.TotalLines()
	opts := Options{Salt: []byte(n.Salt)}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelCorpus(opts, files, workers)
			}
			b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}
