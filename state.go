package confanon

import (
	"confanon/internal/store"
)

// MappingStoreSchema identifies the durable mapping-ledger record layout
// (the header line of every segment carries it).
const MappingStoreSchema = store.Schema

// MappingStore is a durable, per-owner mapping ledger: a directory of
// append-only, CRC-framed, fsync-committed JSONL segments holding every
// mapping a Session has produced — IP pairs in insertion order, leak-
// recorder entries, sensitive tokens, declared relations. A Session
// attached to a store commits its mapping delta at every clean file
// boundary (the same commit points the provenance ledger uses; a file
// that dies mid-way commits nothing), so any replica that opens the
// directory replays to an identical mapping state even after a crash.
//
// The store holds cleartext-derived values (original addresses, leak-
// recorder tokens). Treat the directory with the same care as the salt:
// it is created 0700 with 0600 segments, and belongs on the same trust
// boundary as the secret itself.
type MappingStore struct {
	led *store.Ledger
}

// OpenMappingStore opens (creating if needed) the mapping ledger in dir,
// keyed to the given owner salt, and replays every committed record. A
// directory written under a different salt is refused — mixing mappings
// from two secrets would corrupt both corpora.
func OpenMappingStore(dir string, salt []byte) (*MappingStore, error) {
	led, err := store.Open(dir, store.SaltFingerprint(salt))
	if err != nil {
		return nil, err
	}
	return &MappingStore{led: led}, nil
}

// Dir returns the store's directory.
func (m *MappingStore) Dir() string { return m.led.Dir() }

// Compact folds the committed state into a single snapshot segment and
// removes the old segments. Routine growth is compacted automatically;
// this forces it (e.g. before archiving the directory).
func (m *MappingStore) Compact() error { return m.led.Compact() }

// Close flushes buffered appends and closes the active segment.
// Uncommitted appends are NOT committed — only clean file boundaries
// commit (see UseStore).
func (m *MappingStore) Close() error { return m.led.Close() }

// UseStore attaches the Session to the store: the store's replayed
// state is restored into the Session (so this run continues the prior
// runs' mapping exactly), and every subsequent clean file boundary
// commits the Session's mapping delta durably. Call before the first
// anonymization. Restore fails if the replayed pairs do not verify
// under this Session's salt.
//
// Commit failures during the run (a full disk, a vanished directory)
// are sticky and deliberately do not interrupt anonymization — the
// outputs are still correct; only durability is lost. SyncStore
// surfaces the first such error; callers that need durability (the CLI
// does) must treat it as run-fatal and discard the outputs, or re-run.
func (a *Anonymizer) UseStore(m *MappingStore) error {
	if err := a.sess.RestoreState(m.led.State()); err != nil {
		return err
	}
	a.sess.SetLedger(m.led)
	return nil
}

// SyncStore commits any mapping delta accumulated since the last clean
// file boundary and returns the first ledger error of the run, if any.
// Call at end of run, before MappingStore.Close.
func (a *Anonymizer) SyncStore() error { return a.sess.SyncLedger() }
