package confanon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	. "confanon"
)

// This file pins the tracing contract end to end: a traced run is
// byte-identical to an untraced one at every worker count, the span
// graph is a well-formed tree (corpus → file → stage → rule), every
// ledger entry resolves to its owning file span, and — the property the
// whole design exists for — the exported trace file contains no
// cleartext sensitive tokens, verified by the engine's own leak
// detector.

// TestTracedRunOutputByteIdentical: wiring a Tracer must not perturb
// the output in any mode or at any worker count.
func TestTracedRunOutputByteIdentical(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	want, _ := ParallelCorpus(Options{Salt: []byte(goldenSalt)}, in, 1)

	for _, workers := range []int{1, 4, 8} {
		tr := NewTracer()
		res, err := ParallelCorpusContext(context.Background(),
			Options{Salt: []byte(goldenSalt), Tracer: tr}, in, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Outputs()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got), len(want))
		}
		for n, w := range want {
			if got[n] != w {
				t.Errorf("workers=%d: traced output of %s differs from untraced run", workers, n)
			}
		}
		if len(tr.Spans()) == 0 || len(tr.Ledger()) == 0 {
			t.Errorf("workers=%d: traced run recorded %d spans, %d decisions; want both > 0",
				workers, len(tr.Spans()), len(tr.Ledger()))
		}
	}

	// The serial fail-closed path traces through the same bridge.
	tr := NewTracer()
	a := New(Options{Salt: []byte(goldenSalt), Tracer: tr})
	res, err := a.CorpusContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for n, w := range want {
		if res.Outputs()[n] != w {
			t.Errorf("serial traced output of %s differs from untraced run", n)
		}
	}
	if len(tr.Spans()) == 0 || len(tr.Ledger()) == 0 {
		t.Error("serial traced run recorded no spans or no decisions")
	}
}

// TestTraceSpanGraph: the published spans form a single tree rooted at
// the corpus span, with kinds nesting corpus → file → stage → rule, and
// every ledger entry pointing into a file span of its own file.
func TestTraceSpanGraph(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	tr := NewTracer()
	if _, err := ParallelCorpusContext(context.Background(),
		Options{Salt: []byte(goldenSalt), Tracer: tr}, in, 4); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byID := make(map[uint64]*Span, len(spans))
	var corpus *Span
	for _, s := range spans {
		if s.Status == "" {
			t.Errorf("span %d (%s %q) was never ended", s.ID, s.Kind, s.Name)
		}
		if byID[uint64(s.ID)] != nil {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		byID[uint64(s.ID)] = s
		if s.Kind == "corpus" {
			if corpus != nil {
				t.Fatal("more than one corpus span")
			}
			corpus = s
		}
	}
	if corpus == nil {
		t.Fatal("no corpus span")
	}
	if corpus.Parent != 0 || corpus.Name != "parallel-corpus" {
		t.Errorf("corpus span = parent %d name %q, want root parallel-corpus", corpus.Parent, corpus.Name)
	}
	if corpus.Attr("workers") != "4" {
		t.Errorf("corpus workers attr = %q, want 4", corpus.Attr("workers"))
	}

	// Kind nesting and tree-ness: every non-root parent exists and is of
	// the enclosing kind; walking parents always terminates at the root.
	fileSpans := map[string]bool{}
	for _, s := range spans {
		switch s.Kind {
		case "corpus":
		case "file":
			if s.Parent != corpus.ID {
				t.Errorf("file span %q parents to %d, want corpus span %d", s.Name, s.Parent, corpus.ID)
			}
			fileSpans[s.Name] = true
		case "stage":
			p := byID[uint64(s.Parent)]
			if p == nil || (p.Kind != "file" && p.Kind != "corpus") {
				t.Errorf("stage span %q has parent %v, want a file or corpus span", s.Name, p)
			}
		case "rule":
			p := byID[uint64(s.Parent)]
			if p == nil || p.Kind != "stage" || p.Name != "rewrite" {
				t.Errorf("rule span %q has parent %v, want the rewrite stage span", s.Name, p)
			}
			if s.Attr("hits") == "" {
				t.Errorf("rule span %q carries no hits attribute", s.Name)
			}
		default:
			t.Errorf("unknown span kind %q", s.Kind)
		}
		hops := 0
		for cur := s; cur.Parent != 0; cur = byID[uint64(cur.Parent)] {
			if byID[uint64(cur.Parent)] == nil {
				t.Fatalf("span %d has dangling parent %d", s.ID, cur.Parent)
			}
			if hops++; hops > len(spans) {
				t.Fatalf("parent cycle reachable from span %d", s.ID)
			}
		}
	}
	for n := range in {
		if !fileSpans[n] {
			t.Errorf("input file %s has no file span", n)
		}
	}

	// Ledger entries resolve to a file span of the same file, on a real
	// line, with a known class and a non-empty rule attribution.
	classes := map[string]bool{"ip": true, "asn": true, "community": true,
		"hashed": true, "passed": true, "dropped": true}
	for _, d := range tr.Ledger() {
		sp := byID[uint64(d.Span)]
		if sp == nil || sp.Kind != "file" || sp.Name != d.File {
			t.Fatalf("decision %+v does not resolve to a file span of %s", d, d.File)
		}
		if d.Line < 1 {
			t.Errorf("decision with line %d, want >= 1: %+v", d.Line, d)
		}
		if !classes[d.Class] {
			t.Errorf("decision with unknown class %q: %+v", d.Class, d)
		}
		if d.Rule == "" {
			t.Errorf("decision with empty rule attribution: %+v", d)
		}
	}
}

// TestTraceFileContainsNoCleartext is the safety acceptance check: the
// exported JSONL trace — and the ledger reconstructed from it — must
// scan clean under the same leak detector that gates the anonymized
// output, because a trace file is meant to be shareable alongside it.
func TestTraceFileContainsNoCleartext(t *testing.T) {
	in := readGoldenDir(t, "testdata/golden/in")
	tr := NewTracer()
	a := New(Options{Salt: []byte(goldenSalt), Tracer: tr, Strict: true})
	res, err := a.CorpusContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("golden corpus did not anonymize cleanly: %+v", res.Report)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading exported trace: %v", err)
	}
	if tf.Schema != TraceSchema {
		t.Errorf("schema %q, want %q", tf.Schema, TraceSchema)
	}
	if len(tf.Spans) != len(tr.Spans()) || len(tf.Ledger) != len(tr.Ledger()) {
		t.Errorf("round trip lost records: %d/%d spans, %d/%d decisions",
			len(tf.Spans), len(tr.Spans()), len(tf.Ledger), len(tr.Ledger()))
	}

	// The ledger's Out values re-spaced into plain text (the compact JSON
	// encoding would hide tokens from the scanner's field splitter), and
	// the raw trace text itself.
	var led strings.Builder
	for _, d := range tf.Ledger {
		led.WriteString(d.Out)
		led.WriteByte('\n')
	}
	for what, text := range map[string]string{
		"reconstructed ledger": led.String(),
		"raw trace JSONL":      buf.String(),
	} {
		for _, l := range a.Leaks(map[string]string{"trace": text}) {
			if !l.LikelyFalsePositive {
				t.Errorf("%s leaks cleartext: %s", what, l)
			}
		}
	}
}

// TestRunReportRoundTrip: the RunReport JSON schema survives a
// marshal/unmarshal cycle with every field intact — hand-populated (so
// the failed/quarantined counts are exercised) and from a live run.
func TestRunReportRoundTrip(t *testing.T) {
	rep := &RunReport{
		Schema:           RunReportSchema,
		FilesOK:          3,
		FilesFailed:      1,
		FilesQuarantined: 2,
		Files:            6,
		Lines:            410,
		TokensHashed:     99,
		IPsMapped:        41,
		ASNsMapped:       7,
		Counters: map[string]float64{
			`confanon_rule_hits_total{rule="I1"}`: 12,
			"confanon_lines_total":                410,
		},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got RunReport
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, rep) {
		t.Errorf("hand-built report did not round-trip:\n got %+v\nwant %+v", got, *rep)
	}

	in := readGoldenDir(t, "testdata/golden/in")
	reg := NewMetricsRegistry()
	a := New(Options{Salt: []byte(goldenSalt), Metrics: reg})
	res, err := a.CorpusContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Schema != RunReportSchema {
		t.Errorf("live report schema %q, want %q", res.Report.Schema, RunReportSchema)
	}
	b, err = json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	var live RunReport
	if err := json.Unmarshal(b, &live); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&live, res.Report) {
		t.Error("live report did not round-trip")
	}
}
