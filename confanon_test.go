package confanon

import (
	"strings"
	"testing"

	"confanon/internal/netgen"
)

func TestFacadeCorpusAndValidate(t *testing.T) {
	n := netgen.Generate(netgen.Params{Seed: 900, Kind: netgen.Backbone, Routers: 20,
		UseASPathAlternation: true, UseCommunityRegexps: true})
	pre := n.RenderAll()
	a := New(Options{Salt: []byte(n.Salt)})
	post := a.Corpus(pre)
	if len(post) != len(pre) {
		t.Fatalf("file count changed: %d -> %d", len(pre), len(post))
	}
	rep := Validate(pre, post)
	if !rep.OK() {
		t.Errorf("validation failed:\nsuite1: %v\nsuite2 pre:  %s\nsuite2 post: %s",
			rep.Suite1, rep.Suite2.PreSummary, rep.Suite2.PostSummary)
	}
	// No identity content survives.
	for name, text := range post {
		if strings.Contains(text, n.Params.Name) {
			t.Errorf("company name leaked in %s", name)
		}
	}
	if a.Stats().Files != int64(len(pre)) {
		t.Errorf("stats files = %d", a.Stats().Files)
	}
}

func TestFacadeLeaksAndAddRule(t *testing.T) {
	a := New(Options{Salt: []byte("s")})
	files := map[string]string{
		"r1": "router bgp 7018\nodd command with 7018 tail\n",
	}
	post := a.Corpus(files)
	leaks := a.Leaks(post)
	if len(leaks) == 0 {
		t.Fatal("no leaks reported for a raw ASN")
	}
	a.AddRule(leaks[0].Tok)
	post2 := a.Corpus(files)
	if l2 := a.Leaks(post2); len(l2) != 0 {
		t.Errorf("leak persisted after AddRule: %v", l2)
	}
}

func TestFacadeFileEqualsCorpusSingle(t *testing.T) {
	text := "interface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n"
	a1 := New(Options{Salt: []byte("k")})
	a2 := New(Options{Salt: []byte("k")})
	if a1.File(text) != a2.Corpus(map[string]string{"f": text})["f"] {
		t.Error("File and single-file Corpus disagree")
	}
}

func TestParseConfigExposed(t *testing.T) {
	c := ParseConfig("hostname r1\nend\n")
	if c.Hostname != "r1" {
		t.Errorf("ParseConfig: %+v", c)
	}
}

func TestMinimalStyleFacade(t *testing.T) {
	a := New(Options{Salt: []byte("k"), Style: Minimal})
	out := a.File("ip as-path access-list 9 permit _70[1-9]_\n")
	if strings.Contains(out, "_70[1-9]_") {
		t.Errorf("regexp not rewritten: %s", out)
	}
}

func TestDeclareRelationPreserved(t *testing.T) {
	a := New(Options{Salt: []byte("rel")})
	a.DeclareRelation(Relation{ASN: 701, Prefix: 0x0C000000, Len: 8}) // AS701 owns 12.0.0.0/8
	// Anonymize a config that references both mechanisms.
	out := a.File("router bgp 65010\n neighbor 10.0.0.1 remote-as 701\nip route 12.0.0.0 255.0.0.0 Null0\n")
	rels := a.Relations()
	if len(rels) != 1 {
		t.Fatalf("relations = %v", rels)
	}
	// The released relation's ASN must equal the ASN as it appears in
	// the anonymized config, and the prefix must equal the mapped route.
	c := ParseConfig(out)
	if c.BGP.Neighbors[0].RemoteAS != rels[0].ASN {
		t.Errorf("relation ASN %d != config ASN %d", rels[0].ASN, c.BGP.Neighbors[0].RemoteAS)
	}
	if len(c.StaticRoutes) != 1 || c.StaticRoutes[0].Dest != rels[0].Prefix {
		t.Errorf("relation prefix %x != config route %x", rels[0].Prefix, c.StaticRoutes[0].Dest)
	}
	if rels[0].ASN == 701 || rels[0].Prefix == 0x0C000000 {
		t.Error("relation not anonymized")
	}
	if rels[0].String() == "" {
		t.Error("empty relation rendering")
	}
}

func TestRenameFile(t *testing.T) {
	a := New(Options{Salt: []byte("rn")})
	n1 := a.RenameFile("cr1.lax.foo.com-confg")
	n2 := a.RenameFile("cr1.lax.foo.com-confg")
	n3 := a.RenameFile("cr2.sfo.foo.com-confg")
	if n1 != n2 {
		t.Error("rename not deterministic")
	}
	if n1 == n3 {
		t.Error("distinct names collide")
	}
	if !strings.HasSuffix(n1, "-confg") {
		t.Errorf("suffix lost: %q", n1)
	}
	if strings.Contains(n1, "foo") || strings.Contains(n1, "lax") {
		t.Errorf("identity survived in name: %q", n1)
	}
}

func TestMappingPersistenceAcrossRuns(t *testing.T) {
	// First run anonymizes one file; a second run loads the snapshot and
	// must map shared addresses identically while staying consistent for
	// new ones.
	opts := Options{Salt: []byte("persist")}
	a1 := New(opts)
	out1 := a1.File("interface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n")
	snap := a1.SaveMapping()
	if len(snap) == 0 {
		t.Fatal("empty snapshot from tree scheme")
	}

	a2 := New(opts)
	if err := a2.LoadMapping(snap); err != nil {
		t.Fatalf("LoadMapping: %v", err)
	}
	out2 := a2.File("interface Ethernet0\n ip address 12.1.2.3 255.255.255.0\n")
	if out1 != out2 {
		t.Errorf("reloaded run diverged:\n%s\nvs\n%s", out1, out2)
	}
	// A new address in the same /24 must share the mapped prefix.
	out3 := a2.File("ip name-server 12.1.2.99\n")
	c1 := ParseConfig(out1)
	c3 := ParseConfig(out3)
	if len(c3.NameServers) != 1 {
		t.Fatalf("parse: %+v", c3)
	}
	if c1.Interfaces[0].Address.Addr>>8 != c3.NameServers[0]>>8 {
		t.Error("prefix consistency lost across snapshot reload")
	}

	// Garbage snapshots are rejected; stateless scheme snapshots are empty.
	if err := New(opts).LoadMapping([]byte("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if snap := New(Options{Salt: []byte("x"), StatelessIP: true}).SaveMapping(); len(snap) != 0 {
		t.Error("stateless scheme produced a snapshot")
	}
}

func TestMixedDialectCorpus(t *testing.T) {
	// One owner with both IOS and JunOS routers: a single Corpus call
	// anonymizes both dialects consistently, and validation handles the
	// mixed parse automatically.
	ios := netgen.Generate(netgen.Params{Seed: 1500, Kind: netgen.Backbone, Routers: 8})
	jun := netgen.Generate(netgen.Params{Seed: 1500, Kind: netgen.Backbone, Routers: 8, JunOS: true})
	files := map[string]string{}
	for name, text := range ios.RenderAll() {
		files[name] = text
	}
	for name, text := range jun.RenderAll() {
		files[name] = text
	}
	a := New(Options{Salt: []byte("mixed")})
	post := a.Corpus(files)
	rep := Validate(files, post)
	if !rep.OK() {
		t.Errorf("mixed-dialect validation failed:\nsuite1: %v\nsuite2 pre: %s post: %s",
			rep.Suite1, rep.Suite2.PreSummary, rep.Suite2.PostSummary)
	}
	// Addresses shared between the dialect renderings of the same
	// network map identically (same salt, same corpus).
	for name, text := range post {
		if strings.Contains(text, ios.Params.Name) {
			t.Errorf("identity leaked in %s", name)
		}
	}
}
