package confanon

// These tests pin the shipped example packs (examples/rulepacks/): they
// must load, check against this engine build, and — applied to the
// EOS-style fixture — produce output that is clean under strict leak
// gating, with the MAC token class preserving shape and the EOS name
// lines anonymized.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadExamplePack(t *testing.T, name string) *RulePack {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("examples", "rulepacks", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := LoadRulePack(b)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := CheckRulePack(p); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func TestExamplePacksAnonymizeFixtureCleanly(t *testing.T) {
	mac := loadExamplePack(t, "mac-addresses.json")
	eos := loadExamplePack(t, "arista-eos.toml")
	fixture, err := os.ReadFile(filepath.Join("examples", "rulepacks", "eos-fixture.conf"))
	if err != nil {
		t.Fatal(err)
	}

	prog, err := CompileChecked(Options{
		Salt:      []byte("example-packs"),
		Strict:    true,
		RulePacks: []*RulePack{mac, eos},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Packs()); got != 3 { // builtin + the two examples
		t.Fatalf("Packs() = %d entries, want 3: %v", got, prog.Packs())
	}
	a := prog.NewSession()
	pre := map[string]string{"ar1.conf": string(fixture)}
	res, err := a.CorpusContext(t.Context(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("strict run withheld files: failed=%v quarantined=%v",
			res.Failed(), res.Quarantined())
	}
	post := res.Outputs()
	out := post["ar1.conf"]

	// Zero leak findings under strict — including the pack's own email
	// report rule.
	for _, l := range a.Leaks(post) {
		if !l.LikelyFalsePositive {
			t.Errorf("confirmed leak in example-pack output: %v", l)
		}
	}

	// Every identity-bearing original must be gone.
	for _, secret := range []string{
		"corp", "CUST-ACME", "noc@acme-networks.example", "acme",
		"00:1c:73:aa:bb:01", "00-1C-73-AB-CD-02", "001c.73ab.cd03",
	} {
		if strings.Contains(out, secret) {
			t.Errorf("original token %q survives:\n%s", secret, out)
		}
	}

	// The MAC mappings keep their separator shapes: the fixture's three
	// MACs (colon, dash, Cisco dotted) must each come out in the same
	// style. Scan tokens — line positions shift because the builtin
	// drops the description line.
	var colons, dashes, dotted int
	for _, tok := range strings.Fields(out) {
		switch {
		case macShaped(tok, ':'):
			colons++
		case macShaped(tok, '-'):
			dashes++
		case dottedMACShaped(tok):
			dotted++
		}
	}
	if colons != 1 || dashes != 1 || dotted != 1 {
		t.Errorf("mapped MAC shapes: %d colon, %d dash, %d dotted (want 1 each):\n%s",
			colons, dashes, dotted, out)
	}

	// Determinism: a second session over the same program maps the
	// corpus identically.
	res2, err := prog.NewSession().CorpusContext(t.Context(), pre)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outputs()["ar1.conf"] != out {
		t.Error("pack-loaded anonymization is not deterministic across sessions")
	}
}

// dottedMACShaped reports whether s is three dot-joined hex quads
// (Cisco aabb.ccdd.eeff form).
func dottedMACShaped(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return false
	}
	for _, p := range parts {
		if len(p) != 4 {
			return false
		}
		for i := 0; i < 4; i++ {
			c := p[i]
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
				return false
			}
		}
	}
	return true
}

// macShaped reports whether s is six hex pairs joined by sep.
func macShaped(s string, sep byte) bool {
	parts := strings.Split(s, string(sep))
	if len(parts) != 6 {
		return false
	}
	for _, p := range parts {
		if len(p) != 2 {
			return false
		}
		for i := 0; i < 2; i++ {
			c := p[i]
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
				return false
			}
		}
	}
	return true
}
